package client

import (
	"fmt"

	"rmp/internal/page"
)

// mirrorPolicy keeps two copies of every page on two different
// servers (paper §2.2 MIRRORING). Crash recovery is near-free — the
// mirror copy is read directly — at the price of two transfers per
// pageout and double memory use.
//rmpvet:holds Pager.mu
type mirrorPolicy struct {
	p *Pager
}

func (m *mirrorPolicy) pageOut(id page.ID, data page.Buf) error {
	p := m.p
	loc := p.table[id]
	if loc == nil {
		loc = &location{}
		p.table[id] = loc
	}
	loc.lost = false

	// Overwrite existing replicas in place — both transfers in
	// flight simultaneously, so the pageout costs one round trip.
	// On a v2 session each transfer additionally shares its server's
	// multiplexed connection with any concurrent pager traffic rather
	// than queueing behind it. Replicas whose server died mid-write
	// are dropped.
	if len(loc.replicas) > 0 {
		reqs := make([]sendReq, 0, len(loc.replicas))
		refs := make([]slotRef, 0, len(loc.replicas))
		for _, ref := range loc.replicas {
			if !p.servers[ref.srv].alive {
				continue
			}
			reqs = append(reqs, sendReq{srv: ref.srv, key: ref.key, data: data})
			refs = append(refs, ref)
		}
		errs := p.sendPages(reqs)
		kept := loc.replicas[:0]
		for i, ref := range refs {
			if errs[i] == nil {
				kept = append(kept, ref)
			}
		}
		loc.replicas = kept
	}

	// Top up to two replicas on distinct servers.
	for len(loc.replicas) < 2 {
		exclude := make([]int, 0, len(loc.replicas))
		for _, ref := range loc.replicas {
			exclude = append(exclude, ref.srv)
		}
		srv := p.pickServer(exclude...)
		if srv < 0 {
			break
		}
		key := p.allocKey()
		if err := p.sendPage(srv, key, data, true); err != nil {
			continue
		}
		loc.replicas = append(loc.replicas, slotRef{srv: srv, key: key})
	}

	switch len(loc.replicas) {
	case 2:
		if loc.onDisk {
			p.swap.Delete(uint64(id))
			loc.onDisk = false
		}
		return nil
	case 1:
		// Degraded: only one server available. Keep the single remote
		// copy and shadow it on disk so reliability is preserved.
		p.logf("mirroring degraded for %v: one replica + disk shadow", id)
		loc.onDisk = true
		p.stats.FallbackPageOuts++
		return p.diskPut(id, data)
	default:
		p.stats.FallbackPageOuts++
		loc.onDisk = true
		return p.diskPut(id, data)
	}
}

func (m *mirrorPolicy) pageIn(id page.ID) (page.Buf, error) {
	p := m.p
	loc := p.table[id]
	if loc == nil {
		return nil, ErrNotPagedOut
	}
	// Try each replica; the first one wins. A failed fetch triggers
	// the crash handler, which re-mirrors from the survivor. A replica
	// that persistently fails checksum verification is remembered and
	// repaired in place from whichever good copy is found.
	var corrupt []slotRef
	refs := append([]slotRef(nil), loc.replicas...)
	for _, ref := range refs {
		if !p.servers[ref.srv].alive {
			continue
		}
		data, err := p.fetchPage(ref.srv, ref.key)
		if err == nil {
			m.repairReplicas(corrupt, data)
			return data, nil
		}
		if isBadChecksum(err) {
			corrupt = append(corrupt, ref)
		}
	}
	if loc.onDisk {
		data, err := p.diskGet(id)
		if err == nil {
			m.repairReplicas(corrupt, data)
		}
		return data, err
	}
	if loc.lost {
		return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
	}
	return nil, fmt.Errorf("client: no replica of %v reachable", id)
}

// repairReplicas rewrites replicas whose reads failed checksum
// verification with known-good contents, restoring the mirror without
// surfacing the corruption to the faulting application.
func (m *mirrorPolicy) repairReplicas(corrupt []slotRef, data page.Buf) {
	p := m.p
	for _, ref := range corrupt {
		if !p.servers[ref.srv].alive {
			continue
		}
		if err := p.sendPage(ref.srv, ref.key, data, false); err == nil {
			p.stats.Rehomed++
		}
	}
}

func (m *mirrorPolicy) free(id page.ID) error {
	p := m.p
	loc := p.table[id]
	if loc == nil {
		return nil
	}
	for _, ref := range loc.replicas {
		p.freeSlots(ref.srv, ref.key)
	}
	if loc.onDisk {
		p.swap.Delete(uint64(id))
	}
	delete(p.table, id)
	return nil
}

// serverJoined: nothing to precompute — the joiner becomes a mirror
// target on the next placement or re-protection pass.
func (m *mirrorPolicy) serverJoined(int) {}

// tolerance: two replicas survive any one crash.
func (m *mirrorPolicy) tolerance() int { return 1 }

// redundancy counts live copies: two copies on distinct servers (or
// one copy plus the disk shadow) survive one more crash.
func (m *mirrorPolicy) redundancy() Redundancy {
	p := m.p
	var r Redundancy
	for _, loc := range p.table {
		if loc.lost {
			r.Lost++
			continue
		}
		copies := 0
		for _, ref := range loc.replicas {
			if p.servers[ref.srv].alive {
				copies++
			}
		}
		if loc.onDisk {
			copies++
		}
		switch {
		case copies >= 2:
			r.Full++
		case copies == 1:
			r.Degraded++
		default:
			r.Lost++
		}
	}
	return r
}

// handleCrash restores two-copy redundancy: for every page that had a
// replica on the dead server, read the surviving copy and mirror it
// onto another server.
func (m *mirrorPolicy) handleCrash(srv int) error {
	p := m.p
	var firstErr error
	for id, loc := range p.table {
		idx := -1
		for i, ref := range loc.replicas {
			if ref.srv == srv {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		loc.replicas = append(loc.replicas[:idx], loc.replicas[idx+1:]...)
		if len(loc.replicas) == 0 && !loc.onDisk {
			// Both copies were on servers and the second is gone too
			// (double failure) — page lost.
			loc.lost = true
			p.stats.LostPages++
			continue
		}
		if err := m.restoreRedundancy(id, loc); err != nil && firstErr == nil {
			firstErr = err
		} else {
			p.stats.Recovered++
		}
	}
	return firstErr
}

// restoreRedundancy brings loc back to two copies (or one copy plus
// disk shadow when no second server exists).
func (m *mirrorPolicy) restoreRedundancy(id page.ID, loc *location) error {
	p := m.p
	var data page.Buf
	var err error
	if len(loc.replicas) > 0 {
		data, err = p.fetchPage(loc.replicas[0].srv, loc.replicas[0].key)
	} else {
		data, err = p.diskGet(id)
	}
	if err != nil {
		return err
	}
	exclude := make([]int, 0, 1)
	for _, ref := range loc.replicas {
		exclude = append(exclude, ref.srv)
	}
	for tries := 0; tries < len(p.servers); tries++ {
		dst := p.pickServer(exclude...)
		if dst < 0 {
			break
		}
		key := p.allocKey()
		if err := p.sendPage(dst, key, data, true); err != nil {
			continue
		}
		loc.replicas = append(loc.replicas, slotRef{srv: dst, key: key})
		if len(loc.replicas) == 2 && loc.onDisk {
			p.swap.Delete(uint64(id))
			loc.onDisk = false
		}
		return nil
	}
	// No second server: shadow on disk.
	if !loc.onDisk {
		if err := p.diskPut(id, data); err != nil {
			return err
		}
		loc.onDisk = true
	}
	return nil
}

// evacuate moves this server's replicas elsewhere while it is still
// alive to cooperate.
func (m *mirrorPolicy) evacuate(srv int) error {
	p := m.p
	var ids []page.ID
	for id, loc := range p.table {
		for _, ref := range loc.replicas {
			if ref.srv == srv {
				ids = append(ids, id)
				break
			}
		}
	}
	for _, id := range ids {
		loc := p.table[id]
		idx := -1
		for i, ref := range loc.replicas {
			if ref.srv == srv {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		old := loc.replicas[idx]
		data, err := p.fetchPage(old.srv, old.key)
		if err != nil {
			return err
		}
		loc.replicas = append(loc.replicas[:idx], loc.replicas[idx+1:]...)
		p.freeSlots(srv, old.key)
		if len(loc.replicas) == 0 && !loc.onDisk {
			// The evacuated copy was the only one; shadow it on disk
			// so restoreRedundancy has a source to copy from.
			if err := p.diskPut(id, data); err != nil {
				return err
			}
			loc.onDisk = true
		}
		if err := m.restoreRedundancy(id, loc); err != nil {
			return err
		}
		p.stats.Migrated++
	}
	p.servers[srv].pressured = false
	return nil
}
