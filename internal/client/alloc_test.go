package client

import (
	"bytes"
	"io"
	"testing"

	"rmp/internal/page"
	"rmp/internal/wire"
)

// The mux hot path — frame encode, the batching writev writer, pooled
// demux decode, dispatch — runs once per 4 KB page fault; these gates
// pin its steady-state per-frame allocation count at zero, the figure
// the escapegate proves statically and these tests re-measure at
// runtime. White-box on purpose: FrameWriter and dispatch are the
// factored hot-path internals of the write and read loops.

func muxTestMsg() *wire.Msg {
	data := make([]byte, page.Size)
	return &wire.Msg{
		Type:    wire.TPageOut,
		Version: wire.Version2,
		ID:      7,
		Key:     42,
		Data:    data,
	}
}

func TestFrameEncodeZeroAllocs(t *testing.T) {
	m := muxTestMsg()
	scratch := make([]byte, 0, page.Size+64)
	if avg := testing.AllocsPerRun(200, func() {
		buf, err := wire.AppendFrame(scratch[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		scratch = buf[:0]
	}); avg != 0 {
		t.Fatalf("AppendFrame allocates %.1f objects/frame, want 0", avg)
	}
}

// TestBatchWriteZeroAllocs gates the write loop's steady state: once
// the FrameWriter's internal head/vector buffers have grown to batch
// size, Queue+Flush of a pipelined batch performs no allocation — the
// payload rides in the writev vector by reference, never through a
// scratch copy.
func TestBatchWriteZeroAllocs(t *testing.T) {
	fw := wire.NewFrameWriter(io.Discard)
	m := muxTestMsg()
	const batch = 8
	// Prime: first flush grows heads/ends/datas/vecs to batch size.
	for i := 0; i < batch; i++ {
		if err := fw.Queue(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < batch; i++ {
			if err := fw.Queue(m); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Queue+Flush allocates %.1f objects/batch, want 0", avg)
	}
}

func TestDispatchZeroAllocs(t *testing.T) {
	c := &Conn{pending: map[uint32]chan *wire.Msg{}}
	ch := make(chan *wire.Msg, 1)
	m := muxTestMsg()
	if avg := testing.AllocsPerRun(200, func() {
		c.pending[m.ID] = ch
		c.dispatch(m)
		<-ch
	}); avg != 0 {
		t.Fatalf("dispatch allocates %.1f objects/ack, want 0", avg)
	}
	if n := c.lateDrops.Load(); n != 0 {
		t.Fatalf("dispatch dropped %d acks that were registered", n)
	}
}

// TestDemuxReadZeroAllocs gates the read loop's steady state end to
// end: pooled decode of a full page ack off the stream, dispatch to
// the pending waiter, and recycle by the consumer — zero allocations
// per frame once the pools are warm.
func TestDemuxReadZeroAllocs(t *testing.T) {
	var raw bytes.Buffer
	ackData := make([]byte, page.Size)
	ack := &wire.Msg{Type: wire.TPageInAck, Version: wire.Version2, ID: 7, Key: 42, Data: ackData}
	if err := wire.Encode(&raw, ack); err != nil {
		t.Fatal(err)
	}
	c := &Conn{pending: map[uint32]chan *wire.Msg{}}
	ch := make(chan *wire.Msg, 1)
	r := bytes.NewReader(raw.Bytes())
	// Prime the frame and Msg pools.
	for i := 0; i < 4; i++ {
		r.Reset(raw.Bytes())
		m, err := wire.DecodePooled(r)
		if err != nil {
			t.Fatal(err)
		}
		wire.Recycle(m)
	}
	if avg := testing.AllocsPerRun(200, func() {
		r.Reset(raw.Bytes())
		m, err := wire.DecodePooled(r)
		if err != nil {
			t.Fatal(err)
		}
		c.pending[m.ID] = ch
		c.dispatch(m)
		got := <-ch
		if got.Key != 42 || len(got.Data) != page.Size {
			t.Fatal("demux delivered a mangled ack")
		}
		wire.Recycle(got)
	}); avg != 0 {
		t.Fatalf("decode+dispatch allocates %.1f objects/ack, want 0", avg)
	}
}
