package client

import (
	"bufio"
	"io"
	"testing"

	"rmp/internal/page"
	"rmp/internal/wire"
)

// The mux hot path — frame encode, the batch writer, demux dispatch —
// runs once per 4 KB page fault; these gates pin its per-frame
// allocation count at zero, the figure the escapegate proves
// statically and these tests re-measure at runtime. White-box on
// purpose: writeFrame and dispatch are the factored hot-path
// internals of the write and read loops.

func muxTestMsg() *wire.Msg {
	data := make([]byte, page.Size)
	return &wire.Msg{
		Type:    wire.TPageOut,
		Version: wire.Version2,
		ID:      7,
		Key:     42,
		Data:    data,
	}
}

func TestFrameEncodeZeroAllocs(t *testing.T) {
	m := muxTestMsg()
	scratch := make([]byte, 0, page.Size+64)
	if avg := testing.AllocsPerRun(200, func() {
		buf, err := wire.AppendFrame(scratch[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		scratch = buf[:0]
	}); avg != 0 {
		t.Fatalf("AppendFrame allocates %.1f objects/frame, want 0", avg)
	}
}

func TestBatchWriteZeroAllocs(t *testing.T) {
	c := &Conn{}
	bw := bufio.NewWriterSize(io.Discard, 64<<10)
	m := muxTestMsg()
	if avg := testing.AllocsPerRun(200, func() {
		if err := c.writeFrame(bw, m); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("writeFrame allocates %.1f objects/frame, want 0", avg)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchZeroAllocs(t *testing.T) {
	c := &Conn{pending: map[uint32]chan *wire.Msg{}}
	ch := make(chan *wire.Msg, 1)
	m := muxTestMsg()
	if avg := testing.AllocsPerRun(200, func() {
		c.pending[m.ID] = ch
		c.dispatch(m)
		<-ch
	}); avg != 0 {
		t.Fatalf("dispatch allocates %.1f objects/ack, want 0", avg)
	}
	if n := c.lateDrops.Load(); n != 0 {
		t.Fatalf("dispatch dropped %d acks that were registered", n)
	}
}
