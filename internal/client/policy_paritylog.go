package client

import (
	"errors"
	"fmt"

	"rmp/internal/page"
	"rmp/internal/parity"
)

// parityLogPolicy is the paper's contribution (§2.2 "Parity
// Logging"): pageouts are striped round-robin across S data-server
// columns while the client XORs them into a local parity buffer;
// every S pageouts the buffer is shipped to the parity server. Cost:
// 1 + 1/S transfers per pageout. Superseded page versions are only
// marked inactive, so servers need overflow memory; when the overflow
// budget is exceeded the policy garbage-collects fragmented groups by
// rewriting their live pages.
//
// All group bookkeeping lives in parity.Log; this type binds the
// log's abstract columns to actual servers and performs the I/O.
//
// Crash handling (either a data column or the parity server) uses a
// snapshot-and-rebuild strategy: reconstruct/collect the contents of
// every live page into client memory, then replay them into a fresh
// log over the surviving servers. The paper accepts recovery being
// "a few more seconds" — simplicity and correctness win here.
//rmpvet:holds Pager.mu
type parityLogPolicy struct {
	p *Pager

	log       *parity.Log
	cols      []int // server index per log column
	parityIdx int   // server holding sealed parity pages

	// overflowBudget mirrors the paper's 10% server overflow: GC runs
	// when stored versions exceed live pages by more than this factor.
	overflowBudget float64

	// inflight is the pageout currently being transferred; crash
	// rebuilds read its contents from memory instead of the network.
	inflight struct {
		valid bool
		id    page.ID
		data  page.Buf
	}

	rebuilding bool
	retry      bool
}

func newParityLogPolicy(p *Pager) (*parityLogPolicy, error) {
	alive := p.aliveServers()
	cols := alive[:len(alive)-1]
	l, err := parity.NewLog(len(cols))
	if err != nil {
		return nil, err
	}
	l.SetKeySource(p.allocKey)
	budget := p.cfg.OverflowBudget
	if budget <= 0 {
		budget = 0.10 // the paper's experiments devote 10% (§2.2)
	}
	return &parityLogPolicy{
		p:              p,
		log:            l,
		cols:           append([]int(nil), cols...),
		parityIdx:      alive[len(alive)-1],
		overflowBudget: budget,
	}, nil
}

// srvForColumn maps a log column (or parity.ParityColumn) to a server.
func (pl *parityLogPolicy) srvForColumn(col int) int {
	if col == parity.ParityColumn {
		return pl.parityIdx
	}
	return pl.cols[col]
}

// freeReclaims releases reclaimed slots on whichever servers still live.
func (pl *parityLogPolicy) freeReclaims(recs []parity.Reclaim) {
	perSrv := make(map[int][]uint64)
	for _, r := range recs {
		for _, s := range r.Slots {
			srv := pl.srvForColumn(s.Column)
			perSrv[srv] = append(perSrv[srv], s.Key)
		}
	}
	for srv, keys := range perSrv {
		if pl.p.servers[srv].alive {
			pl.p.freeSlots(srv, keys...)
		}
	}
}

// appendAndSend runs one pageout through the log: place the data,
// ship it, ship the parity seal if one completed, free reclaimed
// slots. Any transport failure triggers the crash rebuild (via
// serverDied); the caller re-dispatches afterwards.
func (pl *parityLogPolicy) appendAndSend(id page.ID, data page.Buf) error {
	p := pl.p
	pl.inflight.valid = true
	pl.inflight.id = id
	pl.inflight.data = data
	defer func() { pl.inflight.valid = false }()

	place, sealed, recs, err := pl.log.Append(id, data)
	if err != nil {
		return err
	}
	if sealed != nil {
		// The data page and the sealed parity page go to different
		// servers; ship them concurrently (sendPages) so the seal costs
		// one round trip instead of two serial ones.
		errs := p.sendPages([]sendReq{
			{srv: pl.cols[place.Column], key: place.Key, data: data, fresh: true},
			{srv: pl.parityIdx, key: sealed.Key, data: sealed.Data, fresh: true},
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	} else if err := p.sendPage(pl.cols[place.Column], place.Key, data, true); err != nil {
		return err
	}
	pl.freeReclaims(recs)
	return nil
}

// maxRedispatch bounds how many times a pageout is re-dispatched
// through a rebuilt layout after a mid-transfer failure. A connection
// can keep failing without its server ever being declared dead (e.g.
// repeated timeouts on a flapping link), so the re-dispatch must not
// loop unboundedly; past the bound the page goes to the local disk.
const maxRedispatch = 3

func (pl *parityLogPolicy) pageOut(id page.ID, data page.Buf) error {
	p := pl.p
	var lastErr error
	for attempt := 0; attempt <= maxRedispatch; attempt++ {
		// Close the asynchronous-recovery gap before touching the log:
		// appending through a layout with a dead column corrupts groups.
		p.ensureAllRecovered()

		// Promote a disk-fallback page back through the log if possible.
		if loc := p.table[id]; loc != nil && loc.onDisk {
			if !pl.columnsAlive() {
				p.stats.FallbackPageOuts++
				return p.diskPut(id, data)
			}
			p.swap.Delete(uint64(id))
			delete(p.table, id)
		}
		if !pl.columnsAlive() {
			return pl.diskFallback(id, data)
		}

		// A server died mid-transfer and the rebuild already ran
		// (using the in-memory inflight copy); the next iteration
		// re-dispatches through the new layout.
		if lastErr = pl.appendAndSend(id, data); lastErr == nil {
			pl.maybeGC()
			return nil
		}
	}
	// Every layout we were handed failed mid-transfer; keep the page
	// safe on the local disk instead.
	if err := pl.diskFallback(id, data); err != nil {
		return lastErr
	}
	return nil
}

// diskFallback records id as living on the local swap device and
// writes it there.
func (pl *parityLogPolicy) diskFallback(id page.ID, data page.Buf) error {
	p := pl.p
	p.stats.FallbackPageOuts++
	loc := p.table[id]
	if loc == nil {
		loc = &location{}
		p.table[id] = loc
	}
	loc.onDisk = true
	return p.diskPut(id, data)
}

// columnsAlive reports whether the current layout can accept pageouts.
func (pl *parityLogPolicy) columnsAlive() bool {
	p := pl.p
	if !p.servers[pl.parityIdx].alive {
		return false
	}
	for _, srv := range pl.cols {
		if !p.servers[srv].alive {
			return false
		}
	}
	return len(pl.cols) > 0
}

func (pl *parityLogPolicy) pageIn(id page.ID) (page.Buf, error) {
	p := pl.p
	p.ensureAllRecovered()
	for attempt := 0; attempt < 2; attempt++ {
		if ck, ok := pl.log.Lookup(id); ok {
			data, err := p.fetchPage(pl.srvForColumn(ck.Column), ck.Key)
			if err == nil {
				return data, nil
			}
			if !isConnError(err) {
				// Persistent checksum failure with the server up:
				// reconstruct this one page through its group's parity
				// and repair the stored copy in place.
				if isBadChecksum(err) {
					if rec, ok := pl.reconstructOne(id, ck); ok {
						return rec, nil
					}
				}
				return nil, err
			}
			continue // crash rebuild ran; retry through the new layout
		}
		if loc := p.table[id]; loc != nil && loc.onDisk {
			return p.diskGet(id)
		}
		if loc := p.table[id]; loc != nil && loc.lost {
			return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
		}
		return nil, ErrNotPagedOut
	}
	return nil, fmt.Errorf("client: pagein %v failed after crash recovery", id)
}

// reconstructOne rebuilds a single page whose read persistently fails
// checksum verification, using its group's survivors (and the open
// group's client-side buffer, for unsealed groups), then rewrites the
// home slot in place. The reconstruction equals the stored contents,
// so sealed parity stays valid. ok=false means the page has no
// recoverable group state and the caller should surface the error.
func (pl *parityLogPolicy) reconstructOne(id page.ID, ck parity.ColumnKey) (page.Buf, bool) {
	p := pl.p
	if ck.Column == parity.ParityColumn {
		return nil, false
	}
	plan, err := pl.log.PlanRecovery(ck.Column)
	if err != nil {
		return nil, false
	}
	for _, lp := range plan.Lost {
		if lp.Page != id {
			continue
		}
		var pages []page.Buf
		for _, sk := range lp.Survivors {
			data, err := p.fetchPage(pl.srvForColumn(sk.Column), sk.Key)
			if err != nil {
				return nil, false
			}
			pages = append(pages, data)
		}
		rec, err := pl.log.Reconstruct(lp, pages)
		if err != nil {
			return nil, false
		}
		p.stats.Recovered++
		if srv := pl.srvForColumn(ck.Column); p.servers[srv].alive {
			if serr := p.sendPage(srv, ck.Key, rec, false); serr == nil {
				p.stats.Rehomed++
			}
		}
		return rec, true
	}
	return nil, false
}

func (pl *parityLogPolicy) free(id page.ID) error {
	p := pl.p
	p.ensureAllRecovered()
	if loc := p.table[id]; loc != nil {
		p.swap.Delete(uint64(id))
		delete(p.table, id)
	}
	pl.freeReclaims(pl.log.Free(id))
	return nil
}

// --- overflow garbage collection ----------------------------------------

// maybeGC rewrites live pages of fragmented groups when inactive
// versions exceed the overflow budget (paper: servers devote 10% more
// memory; "in this case, one has to perform garbage collection").
func (pl *parityLogPolicy) maybeGC() {
	dataVersions, _ := pl.log.VersionsStored()
	live := len(pl.log.Pages())
	budget := int(float64(live)*(1+pl.overflowBudget)) + pl.log.Width()
	excess := dataVersions - budget
	if excess <= 0 {
		return
	}
	p := pl.p
	p.stats.GCPasses++
	for _, id := range pl.log.GCCandidates(excess) {
		ck, ok := pl.log.Lookup(id)
		if !ok {
			continue
		}
		data, err := p.fetchPage(pl.srvForColumn(ck.Column), ck.Key)
		if err != nil {
			return // crash rebuild ran; GC will retrigger later
		}
		if err := pl.appendAndSend(id, data); err != nil {
			return
		}
	}
}

// serverJoined: intentionally lazy — the log's column layout is fixed
// between rebuilds, so a joiner is left out until the next rebuild
// (crash, evacuation, or drain) re-plans over the alive servers. New
// capacity still helps immediately through disk-page promotion.
func (pl *parityLogPolicy) serverJoined(int) {}

// tolerance: one parity column covers any one crash.
func (pl *parityLogPolicy) tolerance() int { return 1 }

// redundancy: conservative group-level view. With the full column
// layout alive, every logged page (sealed groups via parity, the open
// group via the client-side buffer) survives one more crash; with any
// column down, all logged pages are at risk until the rebuild runs.
func (pl *parityLogPolicy) redundancy() Redundancy {
	p := pl.p
	var r Redundancy
	ok := pl.columnsAlive()
	for range pl.log.Pages() {
		if ok {
			r.Full++
		} else {
			r.Degraded++
		}
	}
	for _, loc := range p.table {
		switch {
		case loc.lost:
			r.Lost++
		case loc.onDisk:
			r.Full++
		}
	}
	return r
}

// --- crash recovery and migration ----------------------------------------

func (pl *parityLogPolicy) handleCrash(srv int) error {
	if pl.rebuilding {
		pl.retry = true
		return nil
	}
	return pl.rebuild(nil)
}

func (pl *parityLogPolicy) evacuate(srv int) error {
	if pl.rebuilding {
		return nil
	}
	err := pl.rebuild(map[int]bool{srv: true})
	if err == nil {
		pl.p.servers[srv].pressured = false
	}
	return err
}

// rebuild snapshots every live page and replays it into a fresh log
// over the alive servers not in exclude. It loops until a full replay
// completes without another server dying.
func (pl *parityLogPolicy) rebuild(exclude map[int]bool) error {
	p := pl.p
	pl.rebuilding = true
	defer func() { pl.rebuilding = false }()

	for attempt := 0; attempt <= len(p.servers)+1; attempt++ {
		pl.retry = false
		contents, ok := pl.snapshot()
		if !ok || pl.retry {
			continue // a server died during the snapshot; re-plan
		}
		if pl.writeback(contents, exclude) && !pl.retry {
			return nil
		}
	}
	return errors.New("client: parity-log rebuild did not converge")
}

// snapshot collects the contents of every live page: from the
// inflight buffer, from healthy columns, or by XOR reconstruction for
// pages on a single dead column. Pages that cannot be recovered
// (double failure) are recorded as lost. ok=false means a server died
// mid-snapshot and the caller must re-plan.
func (pl *parityLogPolicy) snapshot() (map[page.ID]page.Buf, bool) {
	p := pl.p
	contents := make(map[page.ID]page.Buf)

	var deadCols []int
	for col, srv := range pl.cols {
		if !p.servers[srv].alive {
			deadCols = append(deadCols, col)
		}
	}
	parityDead := !p.servers[pl.parityIdx].alive

	// Reconstruct pages on a dead column while the survivors and the
	// open-group buffer are still intact.
	rebuilt := make(map[page.ID]page.Buf)
	if len(deadCols) == 1 {
		plan, err := pl.log.PlanRecovery(deadCols[0])
		if err != nil {
			return nil, false
		}
		for _, lp := range plan.Lost {
			if pl.inflight.valid && lp.Page == pl.inflight.id {
				continue // have it in memory; no reconstruction needed
			}
			var pages []page.Buf
			failed := false
			for _, ck := range lp.Survivors {
				if ck.Column == parity.ParityColumn && parityDead {
					failed = true // sealed group lost both member and parity
					break
				}
				data, err := p.fetchPage(pl.srvForColumn(ck.Column), ck.Key)
				if err != nil {
					if isConnError(err) {
						return nil, false // another death; re-plan
					}
					failed = true
					break
				}
				pages = append(pages, data)
			}
			if failed {
				continue
			}
			data, err := pl.log.Reconstruct(lp, pages)
			if err != nil {
				continue
			}
			rebuilt[lp.Page] = data
			p.stats.Recovered++
		}
	}

	for _, id := range pl.log.Pages() {
		if pl.inflight.valid && id == pl.inflight.id {
			contents[id] = pl.inflight.data.ClonePooled()
			continue
		}
		if data, ok := rebuilt[id]; ok {
			contents[id] = data
			continue
		}
		ck, _ := pl.log.Lookup(id)
		srv := pl.srvForColumn(ck.Column)
		if !p.servers[srv].alive {
			// Unrecoverable: page sat on a dead column and XOR
			// reconstruction failed (or >1 column died).
			p.stats.LostPages++
			loc := p.table[id]
			if loc == nil {
				loc = &location{}
				p.table[id] = loc
			}
			loc.lost = true
			continue
		}
		data, err := p.fetchPage(srv, ck.Key)
		if err != nil {
			if isConnError(err) {
				return nil, false
			}
			p.stats.LostPages++
			continue
		}
		contents[id] = data
	}
	return contents, true
}

// writeback replays contents into a fresh log over the usable
// servers, then frees every slot of the old layout. Returns false if
// a server died mid-replay (caller loops).
func (pl *parityLogPolicy) writeback(contents map[page.ID]page.Buf, exclude map[int]bool) bool {
	p := pl.p

	// Old layout's slots, to free on the servers that remain alive.
	oldSlots := pl.log.AllSlots()
	oldCols := append([]int(nil), pl.cols...)
	oldParity := pl.parityIdx

	var usable []int
	for _, i := range p.aliveServers() {
		if !exclude[i] {
			usable = append(usable, i)
		}
	}

	if len(usable) < 2 {
		// Not enough servers for data + parity: everything goes to the
		// local disk; reliability is preserved by the disk itself.
		for id, data := range contents {
			loc := p.table[id]
			if loc == nil {
				loc = &location{}
				p.table[id] = loc
			}
			loc.onDisk = true
			if err := p.diskPut(id, data); err != nil {
				p.logf("rebuild: disk fallback for %v: %v", id, err)
			}
			p.stats.FallbackPageOuts++
		}
		newLog, _ := parity.NewLog(1)
		newLog.SetKeySource(p.allocKey)
		pl.log = newLog
		pl.cols = nil
		if len(usable) == 1 {
			pl.parityIdx = usable[0]
		}
		pl.freeOldLayout(oldSlots, oldCols, oldParity)
		return true
	}

	cols := usable[:len(usable)-1]
	parityIdx := usable[len(usable)-1]
	newLog, err := parity.NewLog(len(cols))
	if err != nil {
		return false
	}
	newLog.SetKeySource(p.allocKey)
	// If this attempt dies midway (another server failing under us),
	// free whatever it managed to write before the caller retries with
	// yet another fresh layout.
	abort := func() bool {
		pl.freeOldLayout(newLog.AllSlots(), cols, parityIdx)
		return false
	}

	for id, data := range contents {
		place, sealed, _, err := newLog.Append(id, data)
		if err != nil {
			return abort()
		}
		if err := p.sendPage(cols[place.Column], place.Key, data, true); err != nil {
			return abort() // serverDied set retry via handleCrash guard
		}
		if sealed != nil {
			if err := p.sendPage(parityIdx, sealed.Key, sealed.Data, true); err != nil {
				return abort()
			}
		}
		p.stats.Rehomed++
	}

	pl.log = newLog
	pl.cols = append([]int(nil), cols...)
	pl.parityIdx = parityIdx
	pl.freeOldLayout(oldSlots, oldCols, oldParity)
	return true
}

// freeOldLayout releases the previous log's slots on servers that are
// still alive (dead servers' memory is gone with them).
func (pl *parityLogPolicy) freeOldLayout(slots []parity.ColumnKey, cols []int, parityIdx int) {
	p := pl.p
	perSrv := make(map[int][]uint64)
	for _, s := range slots {
		srv := parityIdx
		if s.Column != parity.ParityColumn {
			if s.Column >= len(cols) {
				continue
			}
			srv = cols[s.Column]
		}
		perSrv[srv] = append(perSrv[srv], s.Key)
	}
	for srv, keys := range perSrv {
		if srv >= 0 && srv < len(p.servers) && p.servers[srv].alive {
			p.freeSlots(srv, keys...)
		}
	}
}
