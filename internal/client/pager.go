package client

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"rmp/internal/disk"
	"rmp/internal/membership"
	"rmp/internal/page"
	"rmp/internal/wire"
)

// Policy selects the reliability scheme (paper §2.2, §4.7).
type Policy int

const (
	// PolicyNone stores a single copy on one remote server. Fastest;
	// a server crash loses pages.
	PolicyNone Policy = iota
	// PolicyMirroring stores two copies on two different servers.
	// 2 transfers per pageout, 2x memory.
	PolicyMirroring
	// PolicyParity is the basic parity scheme: each page has a fixed
	// home server and parity group; on pageout the home server XORs
	// old and new and forwards the delta to the parity server.
	// 2 transfers per pageout (one client->server, one server->parity),
	// 1+1/S memory.
	PolicyParity
	// PolicyParityLogging is the paper's contribution: round-robin
	// placement into fresh parity groups with a client-side parity
	// buffer. 1+1/S transfers per pageout, 1+1/S memory plus overflow.
	PolicyParityLogging
	// PolicyWriteThrough stores one remote copy and writes every page
	// to the local disk in parallel (§4.7), treating remote memory as
	// a write-through cache of the disk.
	PolicyWriteThrough
	// PolicyRS stripes pageouts into Reed-Solomon RS(k,m) groups: k
	// data shards on k servers plus m parity shards on m more. Any m
	// simultaneous crashes are survivable; (k+m)/k transfers and
	// memory per pageout, amortized. See policy_rs.go.
	PolicyRS
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "NO_RELIABILITY"
	case PolicyMirroring:
		return "MIRRORING"
	case PolicyParity:
		return "PARITY"
	case PolicyParityLogging:
		return "PARITY_LOGGING"
	case PolicyWriteThrough:
		return "WRITE_THROUGH"
	case PolicyRS:
		return "RS"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// allocChunk is how many pages of swap space the pager reserves from
// a server at a time.
const allocChunk = 64

// Config parametrizes a Pager.
type Config struct {
	// ClientName identifies this client; all its connections (and
	// parity deltas forwarded on its behalf) share one namespace per
	// server. Defaults to "rmp-client".
	ClientName string
	// Servers are the remote memory server addresses, in registry
	// order (the paper registers participants "in a common file"; see
	// LoadRegistry). Policies that use a parity server take the last
	// address for it.
	Servers []string
	// Policy is the reliability policy.
	Policy Policy
	// AuthToken authenticates to the servers.
	AuthToken string
	// SwapPath is the local swap file used for disk fallback and the
	// write-through policy; empty means an unlinked temp file.
	SwapPath string
	// DiskModel optionally throttles the local swap file to emulate a
	// 1996 paging disk.
	DiskModel disk.LatencyModel
	// Logger receives diagnostics; nil silences them.
	Logger *log.Logger
	// RebalanceEvery, if positive, starts a background ticker that
	// migrates pages away from pressured servers and promotes disk
	// pages back to remote memory (paper §2.1). Zero disables it;
	// tests and callers can invoke Rebalance directly.
	RebalanceEvery time.Duration
	// WeighTiers makes Rebalance weigh "slow remote" against "move
	// away" before evacuating a pressured server: it reads the
	// server's STAT tier occupancy, and while less than
	// EvacuateDiskFrac of the stored pages sit in the disk tier (the
	// rest served from memory, compressed at worst) and the server
	// still reports free space, the evacuation is skipped — a
	// compressed remote page is still far faster than a paging disk.
	// Default off: a pressure advisory always evacuates, the paper's
	// §2.1 behaviour.
	WeighTiers bool
	// EvacuateDiskFrac is the disk-tier share at which a pressured
	// server gets evacuated even under WeighTiers (default 0.5).
	EvacuateDiskFrac float64
	// NetLatencyThreshold, if positive, enables the paper's §5
	// network-load adaptation: a server whose smoothed request RTT
	// exceeds the threshold is not used for new placements, and when
	// every server is that slow, pageouts go to the local disk (which
	// "may become [cheaper] than the cost of using the network").
	// Disk pages are promoted back by Rebalance once the network
	// recovers.
	NetLatencyThreshold time.Duration
	// FarLatencyFactor, if > 1, enables the §5 heterogeneous-network
	// placement: servers whose RTT exceeds the fastest server's by
	// this factor form a "far" memory tier used only when every near
	// server is full — a four-level hierarchy of local memory, near
	// remote memory, far remote memory, and disk.
	FarLatencyFactor float64
	// OverflowBudget is the fraction of extra (inactive) page
	// versions parity logging may accumulate on the servers before
	// garbage-collecting fragmented groups. Zero means the paper's
	// 10%. Only meaningful for PolicyParityLogging and PolicyRS.
	OverflowBudget float64
	// RSDataShards (k) and RSParityShards (m) set the RS(k,m) group
	// geometry for PolicyRS: groups of k data pages protected by m
	// parity pages, surviving any m simultaneous server crashes.
	// Zero means the defaults k=4, m=2. When fewer than k+m servers
	// are alive the policy degrades (smaller m, then smaller k) and
	// counts the writes rather than denying them.
	RSDataShards   int
	RSParityShards int
	// Membership, when non-nil, enables the live-membership layer:
	// heartbeat failure detection (PING/PONG on a dedicated connection
	// per server), crash confirmation without a data-path error, and
	// background re-protection through a recovery worker instead of
	// synchronous recovery inside the failing request. Nil preserves
	// the paper's behaviour (crashes noticed only when an I/O fails).
	Membership *membership.Config
	// WatchRegistry, when set, polls this registry file and joins any
	// servers appended to it at runtime (file-based dynamic join).
	WatchRegistry string
	// WatchEvery is the registry poll interval (default 2s).
	WatchEvery time.Duration

	// ReqTimeout caps the adaptive per-request deadline (the ceiling
	// of srtt + 4·rttvar, and the deadline used before the first RTT
	// sample). Default 5s.
	ReqTimeout time.Duration
	// ReqTimeoutFloor is the lower bound of the adaptive deadline, so
	// a streak of fast round trips cannot shrink it into false
	// timeouts. Default 50ms.
	ReqTimeoutFloor time.Duration
	// RetryBudget bounds the total time one request may spend on a
	// single server across retries, backoffs, and reconnects before
	// the pager degrades (reconstructing reads through the redundancy
	// policy, sending writes to the local swap store). Default 2s.
	RetryBudget time.Duration
	// RetryBaseDelay and RetryMaxDelay shape the exponential backoff
	// between retries (jittered doubling from base, capped at max).
	// Defaults 5ms and 200ms.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold is how many consecutive request timeouts open a
	// server's circuit breaker (default 4); BreakerCooldown is how
	// long an open breaker waits before half-opening for a probe
	// (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Dial, when non-nil, replaces TCP dialing for every connection
	// the pager opens: the data path, retry re-dials, heartbeat
	// probes, and membership revival. Tests inject a deterministic
	// in-memory transport (internal/memnet) here.
	Dial DialFunc
	// ForceWireV1 keeps every connection on protocol v1 (strict
	// request/response framing) even against v2-capable servers.
	// The RMP_WIRE_V1 environment variable forces it globally — CI
	// uses it to run the same suite over both negotiation paths.
	ForceWireV1 bool
}

// Stats counts pager activity.
type Stats struct {
	PageOuts         uint64
	PageIns          uint64
	NetTransfers     uint64 // page-sized network transfers (incl. parity)
	DiskReads        uint64
	DiskWrites       uint64
	Migrated         uint64
	Recovered        uint64 // pages reconstructed after a crash
	Rehomed          uint64 // pages moved off damaged/pressured servers
	StayedPut        uint64 // evacuations skipped after weighing tiers
	GCPasses         uint64
	LostPages        uint64 // unrecoverable (PolicyNone after crash)
	FallbackPageOuts uint64 // pageouts that went to local disk

	// Membership-layer counters (zero unless Config.Membership is set,
	// except Drained which also counts synchronous drains).
	HeartbeatDeaths uint64 // crashes confirmed by the failure detector
	Joined          uint64 // servers added to the view at runtime
	Drained         uint64 // servers that left gracefully
	Rebuilds        uint64 // background re-protection passes completed
	RebuildFailures uint64 // re-protection passes that reported errors
	RebuildPending  uint64 // confirmed deaths awaiting re-protection
	// Exposure accumulates the window between each confirmed death and
	// the completion of its re-protection pass — the time the data
	// spent at reduced redundancy, which dominates loss probability.
	Exposure time.Duration
	// ExposureAtTol buckets the same windows by the tolerance that
	// remained while they were open: the policy's crash tolerance
	// minus the deaths still awaiting re-protection, clamped into the
	// array (the last bucket collects everything above). For RS(k,m)
	// with one pending death, ExposureAtTol[m-1] accrues — the time
	// during which only m-1 further crashes were survivable.
	// ExposureAtTol[0] is the fully-exposed window where one more
	// crash loses pages.
	ExposureAtTol [5]time.Duration

	// Degraded-mode counters (PolicyRS).
	DegradedWrites  uint64 // pageouts accepted at reduced RS geometry
	PolicyFallbacks uint64 // policy constructions that fell back (RS -> write-through)

	// Bounded-data-path counters (retry layer, see retry.go).
	Timeouts          uint64 // requests that missed their adaptive deadline
	Retries           uint64 // request re-issues (after backoff)
	BreakerOpens      uint64 // closed→open circuit-breaker transitions
	DeadlineFallbacks uint64 // retry budgets exhausted; caller degraded
	ChecksumFaults    uint64 // BAD_CHECKSUM verdicts handled as transient
}

// ErrPageLost is returned by PageIn when a page is unrecoverable
// (PolicyNone after its server crashed).
var ErrPageLost = errors.New("client: page lost in server crash")

// ErrNotPagedOut is returned by PageIn for a page never paged out.
var ErrNotPagedOut = errors.New("client: page was never paged out")

// remoteServer is the pager's view of one server.
// remoteServer is the pager's view of one server. addr is immutable;
// every mutable field is guarded by Pager.mu — the pager is the
// paper's single paging daemon, and all server-state transitions
// (death, revival, drain, pressure, accounting) happen under its one
// lock.
type remoteServer struct {
	addr string
	// conn is replaced on revival and cleared on death. Guarded by
	// Pager.mu — callers snapshot it under the lock, then do I/O on
	// the snapshot after unlocking.
	conn *Conn
	// alive flips on confirmed death/revival. Guarded by Pager.mu.
	alive bool
	// granted is the swap space reserved there. Guarded by Pager.mu.
	granted int
	// used is the pages currently stored there. Guarded by Pager.mu.
	used int
	// pressured is set when the server advises migration; cleared
	// when migration away from it completes. Guarded by Pager.mu.
	pressured bool
	// suspect is set while the failure detector has missed heartbeats
	// but not yet confirmed death; no new placements go there.
	// Guarded by Pager.mu.
	suspect bool
	// draining is set when the server asked to leave gracefully; it
	// takes no new placements and its pages are migrated out.
	// Guarded by Pager.mu.
	draining bool
	// breaker fail-fasts requests once the server keeps timing out;
	// its transitions run under p.mu (see breaker.go / retry.go).
	breaker breaker
	// everConnected distinguishes "never connected" from "died":
	// false with diedCause set means the initial dial failed.
	// Guarded by Pager.mu.
	everConnected bool
	// joinedAt is when the server was added to the view (zero for
	// config-time servers). Guarded by Pager.mu.
	joinedAt time.Time
	// diedAt is when the most recent death was observed. Guarded by
	// Pager.mu.
	diedAt time.Time
	// diedCause is what killed it (or the failed dial). Guarded by
	// Pager.mu.
	diedCause error
}

// headroom is how many more pages the server has promised to take.
//
//rmpvet:holds Pager.mu
func (rs *remoteServer) headroom() int { return rs.granted - rs.used }

// slotRef names a stored copy: server index + storage key.
type slotRef struct {
	srv int
	key uint64
}

// location records where a logical page lives. Exactly one of the
// fields is populated for NONE/PARITY; MIRRORING fills two replicas;
// WRITE_THROUGH fills one replica and onDisk; a fallback page fills
// only onDisk. PARITY_LOGGING pages are tracked by the parity log
// instead unless they fell back to disk.
type location struct {
	replicas []slotRef
	onDisk   bool
	lost     bool
}

// Pager is the Remote Memory Pager: the client that the OS block
// device layer (or our user-space VM) hands pagein/pageout requests
// to. All methods are safe for concurrent use; requests are serialized
// like the paper's "one dedicated paging daemon".
type Pager struct {
	mu  sync.Mutex
	cfg Config

	// servers is the membership view; the slice grows under mu
	// (AddServer) and its entries' mutable fields are likewise
	// guarded by mu.
	servers []*remoteServer
	swap    *disk.Store

	// table maps logical pages to their stored copies. Guarded by mu.
	table map[page.ID]*location
	// nextKey feeds allocKey. Guarded by mu.
	nextKey uint64

	// pol is the active policy strategy; replaced only when a policy
	// switch is requested. Guarded by mu.
	pol policyImpl

	// stats counts operations and faults. Guarded by mu.
	stats Stats
	// closed latches Close. Guarded by mu.
	closed bool

	stopRebalance chan struct{}
	rebalanceWG   sync.WaitGroup

	// Membership layer (nil / empty unless Config.Membership is set).
	hb        *membership.Detector
	rep       *membership.Reprotector
	prober    *hbProber
	stopWatch func()
	// addMu serializes AddServer so concurrent gossip cannot insert
	// the same address twice (the dial happens outside p.mu).
	addMu sync.Mutex
	// rebuildPending maps a dead server index to its death-confirm
	// time while its re-protection pass has not run yet. Entries are
	// consumed by ensureRecovered (background job or synchronous
	// barrier at a policy entry point, whichever comes first).
	// Guarded by mu.
	rebuildPending map[int]time.Time
	// exposedSince marks the start of the current reduced-redundancy
	// accounting window for Stats.ExposureAtTol; it is advanced every
	// time the pending-death count changes. Guarded by mu.
	exposedSince time.Time
}

// policyImpl is the per-policy strategy. Implementations run with
// p.mu held.
type policyImpl interface {
	// pageOut stores data for id.
	pageOut(id page.ID, data page.Buf) error
	// pageIn retrieves the page for id.
	pageIn(id page.ID) (page.Buf, error)
	// free releases storage for id.
	free(id page.ID) error
	// handleCrash recovers from the death of server srv (already
	// marked dead).
	handleCrash(srv int) error
	// evacuate moves pages off the (still alive) pressured or
	// draining server.
	evacuate(srv int) error
	// serverJoined tells the policy that server srv is alive and may
	// take placements (a dynamic join or a revival).
	serverJoined(srv int)
	// redundancy classifies every page by whether it would survive
	// one more server crash. Pure observer: no I/O, no recovery.
	redundancy() Redundancy
	// tolerance is how many further simultaneous server crashes the
	// policy absorbs without losing protected pages, given its
	// current layout (RS reports its live parity width, which shrinks
	// in degraded mode; write-through is bounded by the disk copy,
	// not by servers). Pure observer.
	tolerance() int
}

// New creates a pager, connects to every reachable server, allocates
// initial swap space, and opens the local swap file.
func New(cfg Config) (*Pager, error) {
	if cfg.ClientName == "" {
		cfg.ClientName = "rmp-client"
	}
	if os.Getenv("RMP_WIRE_V1") != "" {
		cfg.ForceWireV1 = true
	}
	p := &Pager{
		cfg:            cfg,
		table:          make(map[page.ID]*location),
		rebuildPending: make(map[int]time.Time),
	}
	for _, addr := range cfg.Servers {
		rs := &remoteServer{addr: addr, breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
		if conn, err := DialWithOptions(addr, cfg.ClientName, cfg.AuthToken, p.dialOpts(DialTimeout)); err == nil {
			rs.conn = conn
			rs.alive = true
			rs.everConnected = true
		} else {
			rs.diedCause = err
			p.logf("server %s unreachable at startup: %v", addr, err)
		}
		p.servers = append(p.servers, rs)
	}

	var err error
	if cfg.SwapPath != "" {
		p.swap, err = disk.Open(cfg.SwapPath, cfg.DiskModel)
	} else {
		p.swap, err = disk.OpenTemp(cfg.DiskModel)
	}
	if err != nil {
		p.closeConns()
		return nil, err
	}

	if p.pol, err = p.newPolicy(); err != nil {
		p.swap.Close()
		p.closeConns()
		return nil, err
	}

	if cfg.RebalanceEvery > 0 {
		p.stopRebalance = make(chan struct{})
		p.rebalanceWG.Add(1)
		go p.rebalanceLoop(cfg.RebalanceEvery)
	}
	// The membership layer starts last: its callbacks need p.pol.
	if cfg.Membership != nil {
		p.rep = membership.NewReprotector()
		p.prober = newHBProber(cfg.ClientName, cfg.AuthToken, cfg.Dial, cfg.ForceWireV1)
		p.hb = membership.NewDetector(*cfg.Membership, p.prober, p.onMemberEvent, p.onMemberAck)
		for _, rs := range p.servers {
			p.hb.Track(rs.addr)
		}
	}
	if cfg.WatchRegistry != "" {
		p.stopWatch = WatchRegistry(cfg.WatchRegistry, cfg.WatchEvery, p.onRegistryChange)
	}
	return p, nil
}

// newPolicy builds the configured policy implementation. Runs during
// construction, before the Pager is shared, so it owns all state the
// same way a mu-holding caller would.
//rmpvet:holds Pager.mu
func (p *Pager) newPolicy() (policyImpl, error) {
	alive := p.aliveServers()
	switch p.cfg.Policy {
	case PolicyNone:
		return &nonePolicy{p: p}, nil
	case PolicyMirroring:
		if len(alive) < 2 {
			return nil, errors.New("client: mirroring needs >= 2 reachable servers")
		}
		return &mirrorPolicy{p: p}, nil
	case PolicyParity:
		if len(alive) < 2 {
			return nil, errors.New("client: parity needs >= 1 data server + 1 parity server")
		}
		return newParityPolicy(p), nil
	case PolicyParityLogging:
		if len(alive) < 2 {
			return nil, errors.New("client: parity logging needs >= 1 data server + 1 parity server")
		}
		return newParityLogPolicy(p)
	case PolicyWriteThrough:
		if len(alive) < 1 {
			return nil, errors.New("client: write-through needs >= 1 reachable server")
		}
		return &writeThroughPolicy{p: p}, nil
	case PolicyRS:
		if len(alive) < 2 {
			// The cluster cannot host even a single RS(1,1) group.
			// Degrade gracefully to write-through (one remote copy
			// plus the local disk) instead of refusing to start.
			if len(alive) < 1 {
				return nil, errors.New("client: RS needs >= 1 reachable server")
			}
			p.logf("rs: only %d reachable server(s); falling back to %v", len(alive), PolicyWriteThrough)
			p.stats.PolicyFallbacks++
			return &writeThroughPolicy{p: p}, nil
		}
		return newRSPolicy(p)
	default:
		return nil, fmt.Errorf("client: unknown policy %v", p.cfg.Policy)
	}
}

func (p *Pager) logf(format string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Printf(format, args...)
	}
}

//rmpvet:holds Pager.mu
func (p *Pager) closeConns() {
	for _, rs := range p.servers {
		if rs.conn != nil {
			rs.conn.Close()
		}
	}
}

// aliveServers returns the indexes of servers currently reachable.
//rmpvet:holds Pager.mu
func (p *Pager) aliveServers() []int {
	var out []int
	for i, rs := range p.servers {
		if rs.alive {
			out = append(out, i)
		}
	}
	return out
}

// allocKey issues a fresh storage key (< 2^48, see server package).
//rmpvet:holds Pager.mu
func (p *Pager) allocKey() uint64 {
	k := p.nextKey
	p.nextKey++
	return k
}

// Close says goodbye to every server and closes the swap file. The
// membership machinery is stopped first, without p.mu held — its
// callbacks and jobs take p.mu themselves.
func (p *Pager) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	if p.stopWatch != nil {
		p.stopWatch()
	}
	if p.hb != nil {
		p.hb.Close()
	}
	if p.rep != nil {
		p.rep.Close()
	}
	if p.stopRebalance != nil {
		close(p.stopRebalance)
		p.rebalanceWG.Wait()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rs := range p.servers {
		if rs.alive && rs.conn != nil {
			rs.conn.Bye()
		}
	}
	if p.prober != nil {
		p.prober.Close()
	}
	return p.swap.Close()
}

// Stats returns a snapshot of the pager's counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.RebuildPending = uint64(len(p.rebuildPending))
	return s
}

// ServerInfo is one row of a cluster survey.
type ServerInfo struct {
	Addr      string
	Alive     bool
	Pressured bool
	Suspect   bool // heartbeats missing, death not yet confirmed
	Draining  bool // asked to leave; pages being migrated out
	RTT       time.Duration
	// RTTVar and ReqDeadline expose the adaptive-timeout state: the
	// Jacobson variance estimate and the deadline the next page-sized
	// request would get (srtt + 4·rttvar + per-byte allowance, clamped).
	RTTVar      time.Duration
	ReqDeadline time.Duration
	// Breaker is the circuit-breaker state: closed, open, or half-open.
	// BreakerFails is the current run of consecutive timeouts.
	Breaker      string
	BreakerFails int
	Stat         wire.StatInfo // zero when the server is unreachable
	// EverConnected false with DiedCause set means the server never
	// answered at all (bad address, never started); true means it was
	// up and died at DiedAt.
	EverConnected bool
	DiedAt        time.Time // zero if never died since last revival
	DiedCause     string    // last death (or failed dial) error, "" if none
}

// Survey polls every configured server's state — the operational view
// behind `rmpctl survey`, as a library call.
func (p *Pager) Survey() []ServerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ServerInfo, 0, len(p.servers))
	for i, rs := range p.servers {
		info := ServerInfo{
			Addr: rs.addr, Alive: rs.alive, Pressured: rs.pressured,
			Suspect: rs.suspect, Draining: rs.draining,
			Breaker: rs.breaker.describe(time.Now()), BreakerFails: rs.breaker.failures,
			EverConnected: rs.everConnected, DiedAt: rs.diedAt,
		}
		if rs.diedCause != nil {
			info.DiedCause = rs.diedCause.Error()
		}
		if rs.alive {
			info.RTT = rs.conn.RTT()
			info.RTTVar = rs.conn.RTTVar()
			info.ReqDeadline = rs.conn.RequestDeadline(page.Size)
			var st wire.StatInfo
			err := p.withConn(i, true, func(c *Conn) error {
				var serr error
				st, serr = c.Stat()
				return serr
			})
			switch {
			case err == nil:
				info.Stat = st
			case errors.Is(err, ErrBreakerOpen):
				// The breaker is refusing requests but the server is not
				// confirmed dead; report the view without a fresh Stat.
			case isConnError(err):
				p.serverDied(i, err)
				info.Alive = false
				info.DiedAt = rs.diedAt
				info.DiedCause = rs.diedCause.Error()
			}
		}
		out = append(out, info)
	}
	return out
}

// PageOut stores the page under the configured reliability policy.
func (p *Pager) PageOut(id page.ID, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("client: pager closed")
	}
	p.stats.PageOuts++
	return p.pol.pageOut(id, data)
}

// PageIn retrieves a previously paged-out page.
func (p *Pager) PageIn(id page.ID) (page.Buf, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("client: pager closed")
	}
	p.stats.PageIns++
	return p.pol.pageIn(id)
}

// Free releases the swap space of the given pages.
func (p *Pager) Free(ids ...page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if err := p.pol.free(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- shared transfer helpers (run with p.mu held) -----------------------

// pickServer returns the most promising server for a new placement;
// exclude lists server indexes to skip. Returns -1 if no server can
// take a page (the caller then falls back to the local disk).
//rmpvet:holds Pager.mu
func (p *Pager) pickServer(exclude ...int) int {
	allowed := make([]int, len(p.servers))
	for i := range p.servers {
		allowed[i] = i
	}
	return p.pickFrom(allowed, exclude...)
}

// pickFrom implements the selection policy over an allowed set:
//
//  1. only alive, unpressured servers with headroom qualify (topping
//     up swap reservations as needed) — the paper's §2.1 selection;
//  2. servers slower than Config.NetLatencyThreshold are skipped —
//     the §5 network-load adaptation;
//  3. with Config.FarLatencyFactor set, near-tier servers are
//     preferred over far ones — the §5 heterogeneous hierarchy;
//  4. ties break to the most free headroom ("the most promising
//     server").
//rmpvet:holds Pager.mu
func (p *Pager) pickFrom(allowed []int, exclude ...int) int {
	skip := make(map[int]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	type cand struct {
		idx  int
		room int
		rtt  time.Duration
	}
	var cands []cand
	for _, i := range allowed {
		rs := p.servers[i]
		if !rs.alive || rs.pressured || rs.suspect || rs.draining || skip[i] {
			continue
		}
		if rs.headroom() <= 0 {
			p.topUp(i)
		}
		if !rs.alive {
			continue // topUp discovered a dead server
		}
		room := rs.headroom()
		if room <= 0 {
			continue
		}
		rtt := rs.conn.RTT()
		if p.cfg.NetLatencyThreshold > 0 && rtt > p.cfg.NetLatencyThreshold {
			continue // slower than the local disk would be
		}
		cands = append(cands, cand{idx: i, room: room, rtt: rtt})
	}
	if len(cands) == 0 {
		return -1
	}
	if f := p.cfg.FarLatencyFactor; f > 1 {
		// Establish the near tier relative to the fastest measured
		// server; unmeasured servers (rtt 0) count as near.
		min := time.Duration(0)
		for _, c := range cands {
			if c.rtt > 0 && (min == 0 || c.rtt < min) {
				min = c.rtt
			}
		}
		if min > 0 {
			far := time.Duration(float64(min) * f)
			near := cands[:0]
			for _, c := range cands {
				if c.rtt <= far {
					near = append(near, c)
				}
			}
			if len(near) > 0 {
				cands = near
			}
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.room > best.room {
			best = c
		}
	}
	return best.idx
}

// topUp tries to reserve another chunk of swap space on server i.
// ALLOC replay after a lost ack over-grants on the server side only
// (reclaimed at BYE), so the request is treated as idempotent.
//rmpvet:holds Pager.mu
func (p *Pager) topUp(i int) {
	rs := p.servers[i]
	var n int
	err := p.withConn(i, true, func(c *Conn) error {
		var aerr error
		n, aerr = c.Alloc(allocChunk)
		return aerr
	})
	if err != nil {
		if isConnError(err) {
			p.serverDied(i, err)
		}
		return
	}
	rs.granted += n
	if rs.conn.PressureAdvised() {
		rs.pressured = true
	}
}

// sendPage stores data under key on server srv, accounting transfers
// and detecting death. PAGEOUT is keyed by block, so the retry layer
// may replay it safely: a duplicate lands the same bytes under the
// same key.
//rmpvet:holds Pager.mu
func (p *Pager) sendPage(srv int, key uint64, data page.Buf, fresh bool) error {
	rs := p.servers[srv]
	if err := p.withConn(srv, true, func(c *Conn) error {
		return c.PageOut(key, data)
	}); err != nil {
		if isConnError(err) {
			p.serverDied(srv, err)
		}
		return err
	}
	p.stats.NetTransfers++
	if fresh {
		rs.used++
	}
	if rs.conn.PressureAdvised() {
		rs.pressured = true
	}
	return nil
}

// sendPageBatch stores several pages on ONE server in a single
// pipelined exchange: every PAGEOUT frame is written back to back and
// the acks are collected afterwards, so the batch costs about one
// round trip instead of one per page (see Conn.PageOutBatch). PAGEOUT
// is keyed by block, so the retry layer may replay the whole batch
// safely after a transport failure.
//rmpvet:holds Pager.mu
func (p *Pager) sendPageBatch(srv int, keys []uint64, pages []page.Buf, fresh bool) error {
	if len(keys) == 0 {
		return nil
	}
	rs := p.servers[srv]
	if err := p.withConn(srv, true, func(c *Conn) error {
		return c.PageOutBatch(keys, pages)
	}); err != nil {
		if isConnError(err) {
			p.serverDied(srv, err)
		}
		return err
	}
	p.stats.NetTransfers += uint64(len(keys))
	if fresh {
		rs.used += len(keys)
	}
	if rs.conn.PressureAdvised() {
		rs.pressured = true
	}
	return nil
}

// sendReq is one transfer for sendPages.
type sendReq struct {
	srv   int
	key   uint64
	data  page.Buf
	fresh bool
}

// sendPages performs several page transfers concurrently — the wire
// I/O overlaps (each Conn serializes itself), while all shared pager
// state is updated single-threaded after the joins. Mirroring uses it
// so a pageout costs one round trip instead of two.
//rmpvet:holds Pager.mu
func (p *Pager) sendPages(reqs []sendReq) []error {
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		rs := p.servers[r.srv]
		if !rs.alive {
			errs[i] = fmt.Errorf("client: server %s is down", rs.addr)
			continue
		}
		wg.Add(1)
		go func(i int, conn *Conn, r sendReq) {
			defer wg.Done()
			errs[i] = conn.PageOut(r.key, r.data)
		}(i, rs.conn, r)
	}
	wg.Wait()
	for i, r := range reqs {
		rs := p.servers[r.srv]
		if !rs.alive {
			continue
		}
		if errs[i] != nil && isConnError(errs[i]) {
			// The concurrent attempt ran outside the retry layer; give
			// the transfer its bounded retries now, serially. On a v1
			// session the conn is poisoned (a late response would alias
			// a replay), so it is closed first and withConn re-dials; a
			// v2 session stays framed across a deadline miss — the late
			// ack is discarded by request id — so the conn is kept.
			p.noteTransportFailure(rs, errs[i])
			if !(errors.Is(errs[i], ErrReqTimeout) && rs.conn.Multiplexed() && !rs.conn.Broken()) {
				rs.conn.Close()
			}
			errs[i] = p.withConn(r.srv, true, func(c *Conn) error {
				return c.PageOut(r.key, r.data)
			})
		}
		if errs[i] != nil {
			if isConnError(errs[i]) {
				p.serverDied(r.srv, errs[i])
			}
			continue
		}
		p.stats.NetTransfers++
		if r.fresh {
			rs.used++
		}
		if rs.conn.PressureAdvised() {
			rs.pressured = true
		}
	}
	return errs
}

// fetchPage reads the page stored under key on server srv. PAGEIN is
// read-only, so the retry layer replays it freely.
//rmpvet:holds Pager.mu
func (p *Pager) fetchPage(srv int, key uint64) (page.Buf, error) {
	rs := p.servers[srv]
	var data page.Buf
	err := p.withConn(srv, true, func(c *Conn) error {
		var ferr error
		data, ferr = c.PageIn(key)
		return ferr
	})
	if err != nil {
		if isConnError(err) {
			p.serverDied(srv, err)
		}
		return nil, err
	}
	p.stats.NetTransfers++
	if rs.conn.PressureAdvised() {
		rs.pressured = true
	}
	return data, nil
}

// freeSlots releases keys on server srv; failures on dead servers are
// ignored (their memory is gone anyway). A replayed FREE whose first
// ack was lost answers NOT_FOUND — that still means "freed", so the
// status is tolerated.
//rmpvet:holds Pager.mu
func (p *Pager) freeSlots(srv int, keys ...uint64) {
	rs := p.servers[srv]
	if !rs.alive || len(keys) == 0 {
		return
	}
	err := p.withConn(srv, true, func(c *Conn) error {
		return c.Free(keys...)
	})
	if err != nil {
		var se *wire.StatusError
		if errors.As(err, &se) && se.Status == wire.StatusNotFound {
			err = nil
		}
	}
	if err != nil {
		if isConnError(err) {
			p.serverDied(srv, err)
		}
		return
	}
	rs.used -= len(keys)
	if rs.used < 0 {
		rs.used = 0
	}
}

// isConnError distinguishes transport failures (server crash) from
// server-reported statuses like NOT_FOUND.
func isConnError(err error) bool {
	var se *wire.StatusError
	return !errors.As(err, &se)
}

// serverDied marks a server dead and triggers policy recovery: either
// synchronously (no membership layer — the paper's behaviour) or by
// queueing a background re-protection job, so the failing request
// returns promptly and redundancy is restored off the data path.
//rmpvet:holds Pager.mu
func (p *Pager) serverDied(srv int, cause error) {
	rs := p.servers[srv]
	if !rs.alive {
		return
	}
	p.logf("server %s died: %v", rs.addr, cause)
	rs.alive = false
	rs.granted, rs.used = 0, 0
	rs.diedAt = time.Now()
	rs.diedCause = cause
	if rs.conn != nil {
		rs.conn.Close()
	}
	if p.rep != nil {
		p.accrueExposure()
		p.rebuildPending[srv] = rs.diedAt
		p.rep.Enqueue(membership.Job{
			Kind: membership.JobRebuild, Addr: rs.addr, ConfirmedAt: rs.diedAt,
			Run: func() error {
				p.mu.Lock()
				defer p.mu.Unlock()
				if p.closed {
					return nil
				}
				p.ensureRecovered(srv)
				return nil
			},
		})
		return
	}
	if err := p.pol.handleCrash(srv); err != nil {
		p.logf("recovery after %s crash: %v", rs.addr, err)
	}
}

// ensureRecovered runs the pending re-protection pass for srv, if
// any, and accounts the exposure window (p.mu held). Idempotent: the
// pending entry is consumed by whoever gets here first — the
// background job, a policy entry point that needs consistent state,
// or a revival.
//rmpvet:holds Pager.mu
func (p *Pager) ensureRecovered(srv int) {
	diedAt, ok := p.rebuildPending[srv]
	if !ok {
		return
	}
	p.accrueExposure()
	delete(p.rebuildPending, srv)
	rs := p.servers[srv]
	if err := p.pol.handleCrash(srv); err != nil {
		p.stats.RebuildFailures++
		p.logf("re-protection after %s crash: %v", rs.addr, err)
	} else {
		p.stats.Rebuilds++
	}
	p.stats.Exposure += time.Since(diedAt)
}

// accrueExposure closes the current reduced-redundancy window, if
// one is open, crediting it to the remaining-tolerance bucket the
// pager sat in (policy tolerance minus pending deaths, clamped into
// Stats.ExposureAtTol), and starts the next window. Called whenever
// the pending-death count is about to change.
//rmpvet:holds Pager.mu
func (p *Pager) accrueExposure() {
	now := time.Now()
	if n := len(p.rebuildPending); n > 0 && !p.exposedSince.IsZero() {
		tol := p.pol.tolerance() - n
		if tol < 0 {
			tol = 0
		}
		if tol >= len(p.stats.ExposureAtTol) {
			tol = len(p.stats.ExposureAtTol) - 1
		}
		p.stats.ExposureAtTol[tol] += now.Sub(p.exposedSince)
	}
	p.exposedSince = now
}

// ensureAllRecovered drains every pending re-protection pass (p.mu
// held). The parity policies call this before touching group
// bookkeeping: their invariants assume crash recovery ran before any
// other mutation, so the asynchronous gap must close here.
//rmpvet:holds Pager.mu
func (p *Pager) ensureAllRecovered() {
	for len(p.rebuildPending) > 0 {
		for srv := range p.rebuildPending {
			p.ensureRecovered(srv) // may add new entries; restart the scan
			break
		}
	}
}

// diskPut stores a page in the local swap file under the page id.
//rmpvet:holds Pager.mu
func (p *Pager) diskPut(id page.ID, data page.Buf) error {
	if err := p.swap.Put(uint64(id), data); err != nil {
		return err
	}
	p.stats.DiskWrites++
	return nil
}

// diskGet reads a page from the local swap file.
//rmpvet:holds Pager.mu
func (p *Pager) diskGet(id page.ID) (page.Buf, error) {
	data, err := p.swap.Get(uint64(id))
	if err != nil {
		return nil, err
	}
	p.stats.DiskReads++
	return data, nil
}

// --- rebalancing (paper §2.1) -------------------------------------------

func (p *Pager) rebalanceLoop(every time.Duration) {
	defer p.rebalanceWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.stopRebalance:
			return
		case <-t.C:
			if err := p.Rebalance(); err != nil {
				p.logf("rebalance: %v", err)
			}
		}
	}
}

// Rebalance performs one pass of the paper's load-adaptation policy:
// pending crash recoveries run first, dead servers are re-dialed (a
// restarted workstation rejoins the donor pool with empty memory),
// draining servers are evacuated and released, pages are migrated
// away from servers that advised memory pressure, and pages that fell
// back to the local disk are promoted to servers with free memory.
func (p *Pager) Rebalance() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.ensureAllRecovered()
	// Refresh load/pressure/drain via LOAD polls; try to revive the
	// dead. Drained servers are not re-dialed — they left on purpose
	// (the membership layer revives them if their drain is cancelled).
	for i, rs := range p.servers {
		if !rs.alive {
			if !rs.draining {
				p.reviveServer(i)
			}
			continue
		}
		if err := p.withConn(i, true, func(c *Conn) error {
			_, lerr := c.Load()
			return lerr
		}); err != nil {
			if errors.Is(err, ErrBreakerOpen) {
				continue // fail fast; the breaker's probe decides later
			}
			p.serverDied(i, err)
			continue
		}
		if rs.conn.PressureAdvised() {
			rs.pressured = true
		} else {
			rs.pressured = false
		}
		if rs.conn.DrainAdvised() {
			rs.draining = true
		}
	}
	var firstErr error
	for i, rs := range p.servers {
		if !rs.alive {
			continue
		}
		if rs.draining {
			if err := p.finishDrain(i); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if rs.pressured {
			if p.cfg.WeighTiers && p.tierTolerable(i) {
				// The server is pressured but serving from memory:
				// staying beats re-homing (§2.1 weighed against the
				// tiered store's slope).
				p.stats.StayedPut++
				continue
			}
			if err := p.pol.evacuate(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := p.promoteDiskPages(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// tierTolerable reports whether a pressured server's tier mix makes
// staying cheaper than evacuating: the pager fetches STAT and keeps
// its pages while the disk-tier share stays under EvacuateDiskFrac
// and the server still advertises free space. Any error says
// "evacuate" — the conservative default.
//
//rmpvet:holds Pager.mu
func (p *Pager) tierTolerable(srv int) bool {
	frac := p.cfg.EvacuateDiskFrac
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	var info wire.StatInfo
	if err := p.withConn(srv, true, func(c *Conn) error {
		var serr error
		info, serr = c.Stat()
		return serr
	}); err != nil {
		return false
	}
	total := info.HotPages + info.ColdPages + info.DiskPages
	if total == 0 {
		return true // nothing stored there; nothing worth moving
	}
	if info.FreePages <= 0 {
		return false
	}
	return float64(info.DiskPages) < frac*float64(total)
}

// promoteDiskPages re-pages disk-fallback pages out through the
// policy now that remote space may exist. (The paper replicates them
// and prefers the remote copy; we move them, freeing the disk slot.)
//rmpvet:holds Pager.mu
func (p *Pager) promoteDiskPages() error {
	if p.cfg.Policy == PolicyWriteThrough {
		return nil // every page has a disk copy by design
	}
	var promote []page.ID
	for id, loc := range p.table {
		if loc.onDisk && len(loc.replicas) == 0 && !loc.lost {
			promote = append(promote, id)
		}
	}
	for _, id := range promote {
		if p.pickServer() < 0 {
			return nil // still no room anywhere
		}
		data, err := p.diskGet(id)
		if err != nil {
			return err
		}
		loc := p.table[id]
		loc.onDisk = false
		p.swap.Delete(uint64(id))
		if err := p.pol.pageOut(id, data); err != nil {
			return err
		}
		p.stats.Migrated++
	}
	return nil
}
