package client_test

import (
	"testing"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

// Pipelining regression benchmarks: the serial v1 path vs the
// multiplexed v2 batch path against a live loopback server. Compare
// with `go test -bench 'PageOut(Serial|Pipelined)' ./internal/client`;
// the machine-readable variant is `rmpbench -exp pipeline`, which
// emits BENCH_pipeline.json.

// benchConn dials one live loopback server and hands the Conn plus a
// filled page to the benchmark body.
func benchConn(b *testing.B, forceV1 bool) (*client.Conn, page.Buf) {
	b.Helper()
	s := server.New(server.Config{CapacityPages: 1 << 18})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	conn, err := client.DialWithOptions(s.Addr().String(), "bench", "", client.DialOptions{ForceV1: forceV1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { conn.Close() })
	if conn.Multiplexed() == forceV1 {
		b.Fatalf("negotiated mux=%v with forceV1=%v", conn.Multiplexed(), forceV1)
	}
	data := page.NewBuf()
	data.Fill(1)
	return conn, data
}

func BenchmarkPageOutSerialV1(b *testing.B) {
	conn, data := benchConn(b, true)
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.PageOut(uint64(i%4096), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageOutSerialV2(b *testing.B) {
	conn, data := benchConn(b, false)
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.PageOut(uint64(i%4096), data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageOutPipelined measures the v2 batch path: 64 pageouts
// per exchange, all in flight at once on one multiplexed Conn.
func BenchmarkPageOutPipelined(b *testing.B) {
	conn, data := benchConn(b, false)
	const batch = 64
	keys := make([]uint64, batch)
	pages := make([]page.Buf, batch)
	for i := range pages {
		pages[i] = data
	}
	b.SetBytes(page.Size * batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = uint64((i*batch + j) % 4096)
		}
		if err := conn.PageOutBatch(keys, pages); err != nil {
			b.Fatal(err)
		}
	}
}
