package client_test

import (
	"fmt"
	"testing"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

// slowCluster builds servers with per-server service delays.
func slowCluster(t *testing.T, delays []time.Duration) ([]*server.Server, []string) {
	t.Helper()
	var servers []*server.Server
	var addrs []string
	for i, d := range delays {
		s := server.New(server.Config{
			Name:          fmt.Sprintf("srv%d", i),
			CapacityPages: 1024,
			ServiceDelay:  d,
		})
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers = append(servers, s)
		addrs = append(addrs, s.Addr().String())
	}
	return servers, addrs
}

func TestConnRTTTracking(t *testing.T) {
	_, addrs := slowCluster(t, []time.Duration{5 * time.Millisecond})
	c, err := client.Dial(addrs[0], "rtt-test", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := mkPage(1)
	for i := 0; i < 40; i++ {
		if err := c.PageOut(uint64(i), data); err != nil {
			t.Fatal(err)
		}
	}
	// EWMA (alpha 1/8) over 40 samples of >= 5 ms converges well past 4 ms.
	if rtt := c.RTT(); rtt < 4*time.Millisecond {
		t.Fatalf("RTT estimate %v, want >= ~service delay 5ms", rtt)
	}
}

func TestPageOutBatch(t *testing.T) {
	_, addrs := slowCluster(t, []time.Duration{0})
	c, err := client.Dial(addrs[0], "batch-test", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 32
	keys := make([]uint64, n)
	pages := make([]page.Buf, n)
	for i := range keys {
		keys[i] = uint64(i)
		pages[i] = mkPage(uint64(i))
	}
	if err := c.PageOutBatch(keys, pages); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		got, err := c.PageIn(keys[i])
		if err != nil || got.Checksum() != pages[i].Checksum() {
			t.Fatalf("batched page %d: %v", i, err)
		}
	}
	// The connection must still be correctly framed for normal use.
	if _, err := c.Load(); err != nil {
		t.Fatalf("connection misframed after batch: %v", err)
	}
	// Arity and size validation.
	if err := c.PageOutBatch(keys[:2], pages[:1]); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	if err := c.PageOutBatch([]uint64{1}, []page.Buf{make(page.Buf, 8)}); err == nil {
		t.Fatal("short page accepted in batch")
	}
	if err := c.PageOutBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestConnStat(t *testing.T) {
	srv, addrs := slowCluster(t, []time.Duration{0})
	c, err := client.Dial(addrs[0], "stat-test", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PageIn(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PageIn(99); err == nil {
		t.Fatal("missing page readable")
	}
	info, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "srv0" {
		t.Errorf("Name = %q", info.Name)
	}
	if info.StoredPages != 1 || info.Puts != 1 || info.Gets != 1 || info.Misses != 1 {
		t.Errorf("stat = %+v", info)
	}
	if info.Clients != 1 {
		t.Errorf("Clients = %d, want 1", info.Clients)
	}
	srv[0].SetPressure(true)
	info, err = c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Pressure {
		t.Error("pressure not reported in stat")
	}
}

func TestPagerSurvey(t *testing.T) {
	srvs, addrs := slowCluster(t, []time.Duration{0, 0, 0})
	p, err := client.New(client.Config{ClientName: "survey", Servers: addrs, Policy: client.PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := uint64(0); i < 6; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	srvs[1].SetPressure(true)
	srvs[2].Close()

	rows := p.Survey()
	if len(rows) != 3 {
		t.Fatalf("survey returned %d rows", len(rows))
	}
	if !rows[0].Alive || rows[0].Stat.StoredPages == 0 {
		t.Fatalf("server 0 row wrong: %+v", rows[0])
	}
	if !rows[1].Stat.Pressure {
		t.Fatalf("server 1 pressure not surveyed: %+v", rows[1])
	}
	if rows[2].Alive {
		t.Fatalf("dead server reported alive: %+v", rows[2])
	}
}

// TestNetLoadAdaptationSwitchesToDisk: §5 network-load handling —
// when every server's RTT exceeds the threshold, pageouts go to the
// local disk instead of the slow network.
func TestNetLoadAdaptationSwitchesToDisk(t *testing.T) {
	_, addrs := slowCluster(t, []time.Duration{20 * time.Millisecond, 20 * time.Millisecond})
	p, err := client.New(client.Config{
		ClientName:          "adaptive",
		Servers:             addrs,
		Policy:              client.PolicyNone,
		NetLatencyThreshold: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// First pageouts establish the RTT estimate (servers not yet
	// known slow); later ones must divert to disk.
	for i := uint64(0); i < 20; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.FallbackPageOuts == 0 {
		t.Fatal("no disk fallback despite slow network")
	}
	// Everything still readable.
	for i := uint64(0); i < 20; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d: %v", i, err)
		}
	}
}

// TestNetLoadAdaptationRecovers: once the network is fast again,
// Rebalance promotes the disk pages back to remote memory.
func TestNetLoadAdaptationRecovers(t *testing.T) {
	// A fast cluster, but with an artificially poisoned RTT via a
	// slow warmup server is hard to stage; instead use threshold
	// large enough that the fast servers qualify, and verify disk
	// pages (from an initial full-server period) promote.
	srvs, addrs := slowCluster(t, []time.Duration{0, 0})
	p, err := client.New(client.Config{
		ClientName:          "adaptive2",
		Servers:             addrs,
		Policy:              client.PolicyNone,
		NetLatencyThreshold: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := uint64(0); i < 10; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Rebalance(); err != nil {
		t.Fatal(err)
	}
	total := srvs[0].Store().Len() + srvs[1].Store().Len()
	if total != 10 {
		t.Fatalf("servers hold %d pages, want 10", total)
	}
}

// TestHeterogeneousTiering: §5 heterogeneous networks — with a near
// and a far server, placements prefer the near one until it fills.
func TestHeterogeneousTiering(t *testing.T) {
	srvs, addrs := slowCluster(t, []time.Duration{0, 25 * time.Millisecond})
	// Shrink the near server so overflow must reach the far tier.
	near := server.New(server.Config{Name: "near", CapacityPages: 8})
	if err := near.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { near.Close() })
	addrs[0] = near.Addr().String()
	srvs[0] = near

	p, err := client.New(client.Config{
		ClientName:       "hetero",
		Servers:          addrs,
		Policy:           client.PolicyNone,
		FarLatencyFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Warm both RTT estimates with one page each... placement order is
	// policy-driven, so instead just page out enough to overflow the
	// near server and verify the split.
	for i := uint64(0); i < 24; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	nearN, farN := srvs[0].Store().Len(), srvs[1].Store().Len()
	if nearN == 0 {
		t.Fatal("near server unused")
	}
	if farN == 0 {
		t.Fatal("far server never used as overflow tier")
	}
	if nearN < 8 {
		t.Fatalf("near tier not filled first: near=%d far=%d", nearN, farN)
	}
	for i := uint64(0); i < 24; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d: %v", i, err)
		}
	}
}
