package client_test

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rmp/internal/chaos"
	"rmp/internal/client"
	"rmp/internal/membership"
	"rmp/internal/page"
	"rmp/internal/server"
)

// End-to-end tests for the live-membership layer: heartbeat failure
// detection through fault-injecting proxies, background re-protection,
// graceful drain, and dynamic join (gossip + registry watching).

// hbConfig is an aggressive detector for tests: death confirmed after
// ~3×20ms of silence instead of the production seconds.
func hbConfig() *membership.Config {
	return &membership.Config{
		Interval: 20 * time.Millisecond,
		Timeout:  150 * time.Millisecond,
		Misses:   3,
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// proxiedCluster puts a chaos proxy in front of every server so a test
// can kill a server's network without touching the server process —
// exactly what a crashed workstation looks like from the pager.
type proxiedCluster struct {
	*cluster
	proxies []*chaos.Proxy
	via     []string // proxy addresses, what the pager dials
}

func newProxiedCluster(t *testing.T, n, capacity int) *proxiedCluster {
	t.Helper()
	pc := &proxiedCluster{cluster: newCluster(t, n, capacity)}
	for i, addr := range pc.addrs {
		backend := addr
		ln, err := pc.net.Listen(fmt.Sprintf("via-srv%d:7077", i))
		if err != nil {
			t.Fatalf("proxy %d listen: %v", i, err)
		}
		px := chaos.NewOn(ln, func() (net.Conn, error) {
			return pc.net.DialTimeout(backend, 5*time.Second)
		})
		t.Cleanup(px.Close)
		pc.proxies = append(pc.proxies, px)
		pc.via = append(pc.via, px.Addr())
	}
	return pc
}

// kill makes server i unreachable: new connections are refused and
// every established one (data path and heartbeat alike) is severed.
func (pc *proxiedCluster) kill(i int) {
	pc.proxies[i].RefuseNew(true)
	pc.proxies[i].CutAll()
}

// TestHeartbeatFailoverMirrored is the issue's acceptance scenario: a
// three-server mirrored cluster under load loses one server. The
// heartbeat detector — not a data-path error — must confirm the death,
// background re-protection must restore full redundancy and record the
// exposure window, and a second crash afterwards must lose nothing.
func TestHeartbeatFailoverMirrored(t *testing.T) {
	pc := newProxiedCluster(t, 3, 512)
	p, err := client.New(client.Config{
		ClientName: "failover-test",
		Servers:    pc.via,
		Policy:     client.PolicyMirroring,
		Membership: hbConfig(),
		Dial:       pc.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 30
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatalf("pageout %d: %v", i, err)
		}
	}
	if r := p.Redundancy(); r.Full != n {
		t.Fatalf("before crash: Redundancy = %+v, want Full=%d", r, n)
	}

	// Kill server 0. The workload is quiesced, so only the heartbeat
	// path can notice.
	pc.kill(0)
	waitUntil(t, 5*time.Second, "heartbeat death confirmation", func() bool {
		return p.Stats().HeartbeatDeaths >= 1
	})

	// Background re-protection must re-mirror every affected page onto
	// the two survivors without any pager call from us.
	waitUntil(t, 10*time.Second, "re-protection to restore full redundancy", func() bool {
		r := p.Redundancy()
		return r.Full == n && r.Degraded == 0 && r.Lost == 0
	})
	st := p.Stats()
	if st.Rebuilds < 1 {
		t.Fatalf("Rebuilds = %d, want >= 1", st.Rebuilds)
	}
	if st.Exposure <= 0 {
		t.Fatalf("Exposure = %v, want > 0", st.Exposure)
	}
	if st.RebuildPending != 0 {
		t.Fatalf("RebuildPending = %d after convergence", st.RebuildPending)
	}

	// Redundancy is restored, so a second crash must not lose a page.
	pc.kill(1)
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil {
			t.Fatalf("pagein %d after second crash: %v", i, err)
		}
		if got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("page %d corrupted after second crash", i)
		}
	}
}

// TestHeartbeatDeathCauseInSurvey: a heartbeat-confirmed death must
// show up in Survey with a timestamp and a cause naming the missed
// heartbeats — distinguishable from "never connected".
func TestHeartbeatDeathCauseInSurvey(t *testing.T) {
	pc := newProxiedCluster(t, 3, 256)
	p, err := client.New(client.Config{
		Servers:    pc.via,
		Policy:     client.PolicyMirroring,
		Membership: hbConfig(),
		Dial:       pc.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	before := time.Now()
	pc.kill(2)
	waitUntil(t, 5*time.Second, "death confirmation", func() bool {
		return p.Stats().HeartbeatDeaths >= 1
	})
	info := p.Survey()[2]
	if info.Alive {
		t.Fatal("dead server still reported alive")
	}
	if !info.EverConnected {
		t.Fatal("EverConnected lost on death")
	}
	if info.DiedAt.Before(before) {
		t.Fatalf("DiedAt = %v, want after %v", info.DiedAt, before)
	}
	if info.DiedCause == "" {
		t.Fatal("DiedCause empty for heartbeat-confirmed death")
	}
}

// TestGracefulDrain: an operator marks a server draining; the pager
// must learn it over heartbeats, migrate every page off, release the
// server, and keep it out of future placements.
func TestGracefulDrain(t *testing.T) {
	c := newCluster(t, 3, 512)
	p, err := client.New(client.Config{
		ClientName: "drain-test",
		Servers:    c.addrs,
		Policy:     client.PolicyMirroring,
		Membership: hbConfig(),
		Dial:       c.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}

	c.servers[0].SetDraining(true)
	waitUntil(t, 5*time.Second, "drain to complete", func() bool {
		return p.Stats().Drained >= 1
	})
	if got := c.servers[0].Store().Len(); got != 0 {
		t.Fatalf("drained server still holds %d pages", got)
	}
	info := p.Survey()[0]
	if info.Alive || !info.Draining {
		t.Fatalf("drained server: Alive=%v Draining=%v, want false/true", info.Alive, info.Draining)
	}

	// Everything must still read back, and new pageouts must land only
	// on the two remaining servers.
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after drain: %v", i, err)
		}
	}
	for i := uint64(n); i < n+10; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.servers[0].Store().Len(); got != 0 {
		t.Fatalf("drained server received %d new pages", got)
	}
}

// TestJoinViaGossip: a server announced to one member via JOIN is
// gossiped in PONGs and automatically joined by the pager, then
// absorbs load the original server cannot take.
func TestJoinViaGossip(t *testing.T) {
	c := newCluster(t, 0, 0)
	c.addServer(server.Config{Name: "small", CapacityPages: 16, OverflowFrac: 0.10})
	big := c.addServer(server.Config{Name: "big", CapacityPages: 512, OverflowFrac: 0.10})

	p, err := client.New(client.Config{
		ClientName: "join-test",
		Servers:    []string{c.addrs[0]},
		Policy:     client.PolicyNone,
		Membership: hbConfig(),
		Dial:       c.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Announce the big server to the small one over the wire, the way
	// `rmpctl join` does.
	ann, err := client.DialWithOptions(c.addrs[0], "announcer", "",
		client.DialOptions{Dial: c.net.DialTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Close()
	if _, err := ann.Join(big.Addr().String()); err != nil {
		t.Fatalf("join announce: %v", err)
	}

	waitUntil(t, 5*time.Second, "gossiped peer to join the view", func() bool {
		return len(p.Survey()) == 2 && p.Stats().Joined >= 1
	})
	info := p.Survey()[1]
	if info.Addr != big.Addr().String() || !info.Alive {
		t.Fatalf("joined server info = %+v", info)
	}

	// 64 pages cannot fit on the small server; the joiner must absorb
	// the overflow that would otherwise spill to disk.
	for i := uint64(0); i < 64; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := big.Store().Len(); got == 0 {
		t.Fatal("joined server took no pages")
	}
	for i := uint64(0); i < 64; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d: %v", i, err)
		}
	}
}

// TestJoinViaRegistryWatch: appending a server to the watched registry
// file brings it into the live view without restarting the pager.
func TestJoinViaRegistryWatch(t *testing.T) {
	c := newCluster(t, 2, 256)
	reg := filepath.Join(t.TempDir(), "servers.conf")
	if err := os.WriteFile(reg, []byte(c.addrs[0]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := client.New(client.Config{
		ClientName:    "watch-test",
		Servers:       []string{c.addrs[0]},
		Policy:        client.PolicyNone,
		Membership:    hbConfig(),
		WatchRegistry: reg,
		WatchEvery:    20 * time.Millisecond,
		Dial:          c.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(p.Survey()) != 1 {
		t.Fatalf("view has %d servers before the edit", len(p.Survey()))
	}

	content := fmt.Sprintf("# cluster\n%s\n%s\n", c.addrs[0], c.addrs[1])
	if err := os.WriteFile(reg, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "registry watcher to join the new server", func() bool {
		return len(p.Survey()) == 2
	})
	info := p.Survey()[1]
	if info.Addr != c.addrs[1] || !info.Alive {
		t.Fatalf("watched-in server info = %+v", info)
	}
}

// TestRevivalAfterRestart: a dead server that comes back is noticed by
// the continuing heartbeats and revived into the placement pool.
func TestRevivalAfterRestart(t *testing.T) {
	pc := newProxiedCluster(t, 3, 256)
	p, err := client.New(client.Config{
		Servers:    pc.via,
		Policy:     client.PolicyMirroring,
		Membership: hbConfig(),
		Dial:       pc.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := uint64(0); i < 10; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	pc.kill(0)
	waitUntil(t, 5*time.Second, "death confirmation", func() bool {
		return p.Stats().HeartbeatDeaths >= 1
	})
	// "Restart" the server by restoring its network.
	pc.proxies[0].RefuseNew(false)
	waitUntil(t, 5*time.Second, "revival", func() bool {
		info := p.Survey()[0]
		return info.Alive && !info.Suspect
	})
	info := p.Survey()[0]
	if !info.DiedAt.IsZero() || info.DiedCause != "" {
		t.Fatalf("revived server still carries death record: %+v", info)
	}
	for i := uint64(0); i < 10; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after revival: %v", i, err)
		}
	}
}

// TestDataPathDeathCauseRecorded: without the membership layer the
// pager still records when and why a server died (data-path error) and
// distinguishes it from a server that never connected.
func TestDataPathDeathCauseRecorded(t *testing.T) {
	c := newCluster(t, 2, 256)
	// 127.0.0.1:1 refuses connections: a registered server that is not
	// actually up.
	addrs := append(append([]string{}, c.addrs...), "127.0.0.1:1")
	p, err := client.New(client.Config{Servers: addrs, Policy: client.PolicyNone, Dial: c.net.DialTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	never := p.Survey()[2]
	if never.EverConnected {
		t.Fatal("unreachable server marked EverConnected")
	}
	if never.DiedCause == "" {
		t.Fatal("no cause recorded for failed startup dial")
	}

	before := time.Now()
	for i := uint64(0); i < 20; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(0)
	for i := uint64(0); i < 20; i++ {
		p.PageIn(page.ID(i)) // some fail; the first failure records the death
	}
	died := p.Survey()[0]
	if died.Alive {
		t.Fatal("crashed server still alive in survey")
	}
	if !died.EverConnected {
		t.Fatal("crashed server lost EverConnected")
	}
	if died.DiedAt.Before(before) {
		t.Fatalf("DiedAt = %v, want after %v", died.DiedAt, before)
	}
	if died.DiedCause == "" {
		t.Fatal("DiedCause empty for data-path death")
	}
}
