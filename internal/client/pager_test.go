package client_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rmp/internal/chaos"
	"rmp/internal/client"
	"rmp/internal/memnet"
	"rmp/internal/page"
	"rmp/internal/server"
)

// cluster is a test fixture: n remote memory servers plus a pager,
// wired over the deterministic in-memory transport (internal/memnet)
// so tests bind no real loopback ports. Server-to-server traffic
// (XORWRITE delta forwarding) rides the same network.
type cluster struct {
	t       *testing.T
	net     *memnet.Network
	servers []*server.Server
	addrs   []string
}

func newCluster(t *testing.T, n, capacity int) *cluster {
	t.Helper()
	c := &cluster{t: t, net: memnet.New()}
	for i := 0; i < n; i++ {
		c.addServer(server.Config{
			Name:          fmt.Sprintf("srv%d", i),
			CapacityPages: capacity,
			OverflowFrac:  0.10,
		})
	}
	return c
}

// addServer starts one server on the cluster's in-memory network
// under the address "<name>:7077" and returns it.
func (c *cluster) addServer(cfg server.Config) *server.Server {
	c.t.Helper()
	cfg.Dial = c.net.DialTimeout
	s := server.New(cfg)
	addr := cfg.Name + ":7077"
	ln, err := c.net.Listen(addr)
	if err != nil {
		c.t.Fatalf("listen %s: %v", addr, err)
	}
	s.Serve(ln)
	c.t.Cleanup(func() { s.Close() })
	c.servers = append(c.servers, s)
	c.addrs = append(c.addrs, addr)
	return s
}

// config is the baseline pager configuration against this cluster;
// tests tweak and pass it to pagerWith.
func (c *cluster) config(policy client.Policy) client.Config {
	return client.Config{
		ClientName: "test-client",
		Servers:    c.addrs,
		Policy:     policy,
		Dial:       c.net.DialTimeout,
	}
}

func (c *cluster) pager(policy client.Policy) *client.Pager {
	c.t.Helper()
	return c.pagerWith(c.config(policy))
}

func (c *cluster) pagerWith(cfg client.Config) *client.Pager {
	c.t.Helper()
	p, err := client.New(cfg)
	if err != nil {
		c.t.Fatalf("pager: %v", err)
	}
	c.t.Cleanup(func() { p.Close() })
	return p
}

// crash kills server i abruptly (no BYE, connections die).
func (c *cluster) crash(i int) { c.servers[i].Close() }

// killTargets adapts the cluster's servers to chaos.KillSet targets:
// Kill severs the server's listener and every established connection
// on the in-memory network in one instant — a machine crash, not a
// graceful stop — then releases the server's resources.
func (c *cluster) killTargets() []chaos.Target {
	ts := make([]chaos.Target, len(c.servers))
	for i := range c.servers {
		i := i
		ts[i] = chaos.Target{Name: c.addrs[i], Kill: func() {
			c.net.Kill(c.addrs[i])
			c.servers[i].Close()
		}}
	}
	return ts
}

func mkPage(seed uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(seed)
	return p
}

var allPolicies = []client.Policy{
	client.PolicyNone,
	client.PolicyMirroring,
	client.PolicyParity,
	client.PolicyParityLogging,
	client.PolicyWriteThrough,
	client.PolicyRS,
}

// TestRoundTripAllPolicies: pageout/pagein/overwrite across every
// policy over real TCP.
func TestRoundTripAllPolicies(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			c := newCluster(t, 3, 512)
			p := c.pager(pol)
			const n = 40
			for i := uint64(0); i < n; i++ {
				if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
					t.Fatalf("pageout %d: %v", i, err)
				}
			}
			// Overwrite half with new contents.
			for i := uint64(0); i < n; i += 2 {
				if err := p.PageOut(page.ID(i), mkPage(i+1000)); err != nil {
					t.Fatalf("re-pageout %d: %v", i, err)
				}
			}
			for i := uint64(0); i < n; i++ {
				want := mkPage(i)
				if i%2 == 0 {
					want = mkPage(i + 1000)
				}
				got, err := p.PageIn(page.ID(i))
				if err != nil {
					t.Fatalf("pagein %d: %v", i, err)
				}
				if got.Checksum() != want.Checksum() {
					t.Fatalf("page %d contents wrong", i)
				}
			}
		})
	}
}

func TestPageInNeverPagedOut(t *testing.T) {
	c := newCluster(t, 2, 64)
	p := c.pager(client.PolicyNone)
	if _, err := p.PageIn(123); !errors.Is(err, client.ErrNotPagedOut) {
		t.Fatalf("got %v, want ErrNotPagedOut", err)
	}
}

func TestFreeAllPolicies(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			c := newCluster(t, 3, 256)
			p := c.pager(pol)
			for i := uint64(0); i < 10; i++ {
				if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Free(0, 1, 2, 3, 4, 5, 6, 7, 8, 9); err != nil {
				t.Fatal(err)
			}
			if _, err := p.PageIn(0); err == nil {
				t.Fatal("freed page still readable")
			}
		})
	}
}

// TestCrashNoneLosesPages: PolicyNone loses pages on a crash — the
// paper's motivation for reliability.
func TestCrashNoneLosesPages(t *testing.T) {
	c := newCluster(t, 2, 256)
	p := c.pager(client.PolicyNone)
	for i := uint64(0); i < 20; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(0)
	lost, survived := 0, 0
	for i := uint64(0); i < 20; i++ {
		_, err := p.PageIn(page.ID(i))
		switch {
		case err == nil:
			survived++
		case errors.Is(err, client.ErrPageLost):
			lost++
		default:
			t.Fatalf("pagein %d: unexpected error %v", i, err)
		}
	}
	if lost == 0 {
		t.Fatal("no pages lost after crash under PolicyNone")
	}
	if survived == 0 {
		t.Fatal("pages on the surviving server also lost")
	}
	if p.Stats().LostPages == 0 {
		t.Fatal("LostPages not counted")
	}
}

// reliableCrashTest verifies that after crashing one server, every
// page is still readable with correct contents.
func reliableCrashTest(t *testing.T, pol client.Policy, nServers, crashIdx int) {
	c := newCluster(t, nServers, 512)
	p := c.pager(pol)
	const n = 30
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i*3)); err != nil {
			t.Fatalf("pageout %d: %v", i, err)
		}
	}
	// Rewrite some pages so parity logging has inactive versions.
	for i := uint64(0); i < n; i += 3 {
		if err := p.PageOut(page.ID(i), mkPage(i*3+7)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(crashIdx)
	for i := uint64(0); i < n; i++ {
		want := mkPage(i * 3)
		if i%3 == 0 {
			want = mkPage(i*3 + 7)
		}
		got, err := p.PageIn(page.ID(i))
		if err != nil {
			t.Fatalf("pagein %d after crash: %v", i, err)
		}
		if got.Checksum() != want.Checksum() {
			t.Fatalf("page %d corrupted by recovery", i)
		}
	}
	// The system must stay writable after recovery.
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i+5000)); err != nil {
			t.Fatalf("post-recovery pageout %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i+5000).Checksum() {
			t.Fatalf("post-recovery pagein %d: %v", i, err)
		}
	}
}

func TestCrashMirroringRecovers(t *testing.T) {
	reliableCrashTest(t, client.PolicyMirroring, 3, 0)
}

func TestCrashParityDataServerRecovers(t *testing.T) {
	// Servers 0,1,2 are data; 3 is parity.
	reliableCrashTest(t, client.PolicyParity, 4, 1)
}

func TestCrashParityParityServerRecovers(t *testing.T) {
	reliableCrashTest(t, client.PolicyParity, 4, 3)
}

func TestCrashParityLoggingDataColumnRecovers(t *testing.T) {
	// Paper configuration: 4 data servers + 1 parity server.
	reliableCrashTest(t, client.PolicyParityLogging, 5, 2)
}

func TestCrashParityLoggingParityServerRecovers(t *testing.T) {
	reliableCrashTest(t, client.PolicyParityLogging, 5, 4)
}

func TestCrashWriteThroughRecovers(t *testing.T) {
	reliableCrashTest(t, client.PolicyWriteThrough, 2, 0)
}

func TestCrashWriteThroughLastServerFallsBackToDisk(t *testing.T) {
	c := newCluster(t, 1, 256)
	p := c.pager(client.PolicyWriteThrough)
	for i := uint64(0); i < 10; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(0)
	for i := uint64(0); i < 10; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("disk copy unreadable after total server loss: %v", err)
		}
	}
}

// TestParityLoggingTransferRatio verifies the live system achieves
// the paper's 1 + 1/S transfers per pageout.
func TestParityLoggingTransferRatio(t *testing.T) {
	c := newCluster(t, 5, 1024) // S = 4 data + parity
	p := c.pager(client.PolicyParityLogging)
	const outs = 200
	for i := 0; i < outs; i++ {
		// Unique pages: no inactive churn, no GC.
		if err := p.PageOut(page.ID(i), mkPage(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	want := uint64(outs + outs/4)
	if st.NetTransfers != want {
		t.Fatalf("NetTransfers = %d for %d pageouts, want %d (1+1/S)", st.NetTransfers, outs, want)
	}
}

// TestMirroringTransferRatio: 2 transfers per pageout.
func TestMirroringTransferRatio(t *testing.T) {
	c := newCluster(t, 3, 1024)
	p := c.pager(client.PolicyMirroring)
	const outs = 50
	for i := 0; i < outs; i++ {
		if err := p.PageOut(page.ID(i), mkPage(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.NetTransfers != 2*outs {
		t.Fatalf("NetTransfers = %d, want %d", st.NetTransfers, 2*outs)
	}
}

// TestBasicParityTransferRatio: 2 page transfers per pageout (one of
// them server->parity).
func TestBasicParityTransferRatio(t *testing.T) {
	c := newCluster(t, 3, 1024)
	p := c.pager(client.PolicyParity)
	const outs = 50
	for i := 0; i < outs; i++ {
		if err := p.PageOut(page.ID(i), mkPage(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.NetTransfers != 2*outs {
		t.Fatalf("NetTransfers = %d, want %d", st.NetTransfers, 2*outs)
	}
}

// TestDiskFallbackWhenServersFull: when every server denies space the
// pager pages to the local disk (paper §2.1).
func TestDiskFallbackWhenServersFull(t *testing.T) {
	c := newCluster(t, 2, 8) // tiny servers
	p := c.pager(client.PolicyNone)
	const n = 64
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatalf("pageout %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.FallbackPageOuts == 0 {
		t.Fatal("no disk fallback despite full servers")
	}
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d: %v", i, err)
		}
	}
}

// TestPressureMigration: a server under memory pressure advises the
// client, which migrates pages away on Rebalance (paper §2.1).
func TestPressureMigration(t *testing.T) {
	c := newCluster(t, 3, 512)
	p := c.pager(client.PolicyNone)
	for i := uint64(0); i < 30; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.servers[0].SetPressure(true)
	if err := p.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if p.Stats().Migrated == 0 {
		t.Fatal("no pages migrated off the pressured server")
	}
	// Server 0's store drains as pages move away.
	if got := c.servers[0].Store().Len(); got != 0 {
		t.Fatalf("pressured server still holds %d pages", got)
	}
	for i := uint64(0); i < 30; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after migration: %v", i, err)
		}
	}
}

// TestWeighTiersStaysPut: with WeighTiers on, a pressure advisory
// from a server that is still serving out of memory (hot + compressed
// tiers) does not trigger evacuation — but once the server's pages
// sink into its disk tier, the pager moves them away after all.
func TestWeighTiersStaysPut(t *testing.T) {
	c := &cluster{t: t, net: memnet.New()}
	for i := 0; i < 3; i++ {
		c.addServer(server.Config{
			Name:          fmt.Sprintf("srv%d", i),
			CapacityPages: 512,
			OverflowFrac:  0.10,
			Spill:         true,
		})
	}
	cfg := c.config(client.PolicyNone)
	cfg.WeighTiers = true
	p := c.pagerWith(cfg)
	const n = 30
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	held := c.servers[0].Store().Len()
	if held == 0 {
		t.Fatal("setup: server 0 got no pages")
	}

	// Pressure compresses part of the resident set but spills nothing:
	// the tier mix is tolerable, so the pager stays put.
	c.servers[0].SetPressure(true)
	if err := p.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	st := p.Stats()
	if st.StayedPut == 0 {
		t.Fatal("pager evacuated despite a memory-served tier mix")
	}
	if got := c.servers[0].Store().Len(); got != held {
		t.Fatalf("pages moved anyway: %d of %d left", got, held)
	}
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d while staying put: %v", i, err)
		}
	}

	// Now sink the server's pages into the disk tier: the same
	// advisory crosses EvacuateDiskFrac and the pager moves away.
	c.servers[0].Store().SetTargets(1, 1)
	c.servers[0].Store().Enforce()
	if err := p.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if got := c.servers[0].Store().Len(); got != 0 {
		t.Fatalf("disk-heavy pressured server still holds %d pages", got)
	}
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after evacuation: %v", i, err)
		}
	}
}

// TestDiskPromotion: pages that fell back to disk move to remote
// memory once a server frees up (paper §2.1).
func TestDiskPromotion(t *testing.T) {
	c := newCluster(t, 2, 8)
	p := c.pager(client.PolicyNone)
	const n = 40
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := p.Stats()
	if before.FallbackPageOuts == 0 {
		t.Fatal("setup: expected disk fallback")
	}
	// Free most pages server-side by freeing them via the pager, then
	// promote.
	for i := uint64(0); i < n/2; i++ {
		if err := p.Free(page.ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Rebalance(); err != nil {
		t.Fatal(err)
	}
	after := p.Stats()
	if after.Migrated == before.Migrated {
		t.Fatal("no disk pages promoted to remote memory")
	}
	for i := uint64(n / 2); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after promotion: %v", i, err)
		}
	}
}

// TestParityLoggingGC: heavy rewriting of a small working set must
// trigger garbage collection and keep server memory bounded.
func TestParityLoggingGC(t *testing.T) {
	c := newCluster(t, 5, 4096)
	p := c.pager(client.PolicyParityLogging)
	// Fragmenting workload: interleave rewrites of a hot page with
	// pageouts of cold pages that are never touched again. Every group
	// ends up holding dead hot-page versions pinned by live cold
	// pages, so inactive versions accumulate until GC rewrites the
	// cold pages into compact groups.
	const rounds = 60
	for k := uint64(0); k < rounds; k++ {
		if err := p.PageOut(page.ID(0), mkPage(10000+k)); err != nil {
			t.Fatal(err)
		}
		if err := p.PageOut(page.ID(100+k), mkPage(k)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().GCPasses == 0 {
		t.Fatal("GC never ran despite heavy fragmentation")
	}
	// Stored versions must stay near the live set: live pages, their
	// parity share, the 10% overflow, and one open group of slack.
	live := 1 + rounds
	total := 0
	for _, s := range c.servers {
		total += s.Store().Len()
	}
	bound := live + live/4 + live/5 + 10
	if total > bound {
		t.Fatalf("servers hold %d pages for %d live (bound %d): GC ineffective", total, live, bound)
	}
	// Every live page must still read back correctly.
	got, err := p.PageIn(page.ID(0))
	if err != nil || got.Checksum() != mkPage(10000+rounds-1).Checksum() {
		t.Fatalf("hot page wrong after GC churn: %v", err)
	}
	for k := uint64(0); k < rounds; k++ {
		got, err := p.PageIn(page.ID(100 + k))
		if err != nil || got.Checksum() != mkPage(k).Checksum() {
			t.Fatalf("cold page %d wrong after GC churn: %v", k, err)
		}
	}
}

// TestRandomizedWorkloadAllPolicies stress-tests mixed pageout /
// pagein / free traffic against an in-memory model.
func TestRandomizedWorkloadAllPolicies(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			c := newCluster(t, 4, 2048)
			p := c.pager(pol)
			model := make(map[page.ID]uint64)
			for op := 0; op < 400; op++ {
				id := page.ID(rng.Intn(50))
				switch rng.Intn(4) {
				case 0, 1: // pageout
					seed := rng.Uint64()
					if err := p.PageOut(id, mkPage(seed)); err != nil {
						t.Fatalf("op %d pageout: %v", op, err)
					}
					model[id] = seed
				case 2: // pagein
					want, ok := model[id]
					got, err := p.PageIn(id)
					if !ok {
						if err == nil {
							t.Fatalf("op %d: pagein of unknown page succeeded", op)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d pagein: %v", op, err)
					}
					if got.Checksum() != mkPage(want).Checksum() {
						t.Fatalf("op %d: wrong contents", op)
					}
				case 3: // free
					if err := p.Free(id); err != nil {
						t.Fatalf("op %d free: %v", op, err)
					}
					delete(model, id)
				}
			}
		})
	}
}

// TestCrashDuringWorkload crashes a server in the middle of traffic
// for each reliable policy and verifies no corruption.
func TestCrashDuringWorkload(t *testing.T) {
	pols := []client.Policy{client.PolicyMirroring, client.PolicyParity, client.PolicyParityLogging, client.PolicyWriteThrough}
	for _, pol := range pols {
		t.Run(pol.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			c := newCluster(t, 5, 2048)
			p := c.pager(pol)
			model := make(map[page.ID]uint64)
			for op := 0; op < 300; op++ {
				if op == 150 {
					c.crash(1)
				}
				id := page.ID(rng.Intn(30))
				if rng.Intn(3) < 2 {
					seed := rng.Uint64()
					if err := p.PageOut(id, mkPage(seed)); err != nil {
						t.Fatalf("op %d pageout: %v", op, err)
					}
					model[id] = seed
				} else if want, ok := model[id]; ok {
					got, err := p.PageIn(id)
					if err != nil {
						t.Fatalf("op %d pagein: %v", op, err)
					}
					if got.Checksum() != mkPage(want).Checksum() {
						t.Fatalf("op %d: wrong contents after crash", op)
					}
				}
			}
			// Final full audit.
			for id, want := range model {
				got, err := p.PageIn(id)
				if err != nil {
					t.Fatalf("audit pagein %v: %v", id, err)
				}
				if got.Checksum() != mkPage(want).Checksum() {
					t.Fatalf("audit: page %v corrupted", id)
				}
			}
		})
	}
}

func TestLoadRegistry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "servers.conf")
	content := "# remote memory servers\n\nalpha:7000\nbeta:7000 # lab machine\n  gamma:7001\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := client.LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha:7000", "beta:7000", "gamma:7001"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLoadRegistryErrors(t *testing.T) {
	if _, err := client.LoadRegistry("/nonexistent/file"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.conf")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := client.LoadRegistry(empty); err == nil {
		t.Fatal("empty registry accepted")
	}
	bad := filepath.Join(dir, "bad.conf")
	os.WriteFile(bad, []byte("not-an-address\n"), 0o644)
	if _, err := client.LoadRegistry(bad); err == nil {
		t.Fatal("malformed address accepted")
	}
}

func TestPolicyString(t *testing.T) {
	names := map[client.Policy]string{
		client.PolicyNone:          "NO_RELIABILITY",
		client.PolicyMirroring:     "MIRRORING",
		client.PolicyParity:        "PARITY",
		client.PolicyParityLogging: "PARITY_LOGGING",
		client.PolicyWriteThrough:  "WRITE_THROUGH",
		client.PolicyRS:            "RS",
	}
	for pol, want := range names {
		if got := pol.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", pol, got, want)
		}
	}
}

func TestMirroringNeedsTwoServers(t *testing.T) {
	c := newCluster(t, 1, 64)
	_, err := client.New(client.Config{Servers: c.addrs, Policy: client.PolicyMirroring, Dial: c.net.DialTimeout})
	if err == nil {
		t.Fatal("mirroring pager created with one server")
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := newCluster(t, 2, 64)
	p := c.pager(client.PolicyNone)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.PageOut(1, mkPage(1)); err == nil {
		t.Fatal("pageout accepted after close")
	}
}

func BenchmarkLivePageOutNone(b *testing.B) {
	benchPageOut(b, client.PolicyNone, 3)
}

func BenchmarkLivePageOutMirroring(b *testing.B) {
	benchPageOut(b, client.PolicyMirroring, 3)
}

func BenchmarkLivePageOutParityLogging(b *testing.B) {
	benchPageOut(b, client.PolicyParityLogging, 5)
}

func benchPageOut(b *testing.B, pol client.Policy, nServers int) {
	var srvs []*server.Server
	var addrs []string
	for i := 0; i < nServers; i++ {
		s := server.New(server.Config{CapacityPages: 1 << 18})
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		srvs = append(srvs, s)
		addrs = append(addrs, s.Addr().String())
	}
	p, err := client.New(client.Config{Servers: addrs, Policy: pol})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	data := mkPage(1)
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PageOut(page.ID(i%4096), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLivePageRoundTrip(b *testing.B) {
	s := server.New(server.Config{CapacityPages: 1 << 16})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(s.Addr().String(), "bench", "")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	data := mkPage(1)
	if err := c.PageOut(1, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PageIn(1); err != nil {
			b.Fatal(err)
		}
	}
}
