package client

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeRegistry(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "servers")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRegistry(t *testing.T) {
	path := writeRegistry(t, `
# remote memory servers
mem1.example:7077

mem2.example:7077   # rack 2
  mem3.example:7078
`)
	got, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mem1.example:7077", "mem2.example:7077", "mem3.example:7078"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLoadRegistryBadLine(t *testing.T) {
	path := writeRegistry(t, "mem1.example:7077\nnot-an-address\n")
	_, err := LoadRegistry(path)
	if err == nil || !strings.Contains(err.Error(), "not-an-address") {
		t.Fatalf("got %v, want bad-line error naming the line", err)
	}
	if !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("error %v does not name line 2", err)
	}
}

func TestLoadRegistryEmpty(t *testing.T) {
	path := writeRegistry(t, "# only comments\n\n")
	if _, err := LoadRegistry(path); err == nil {
		t.Fatal("accepted registry listing no servers")
	}
}

func TestLoadRegistryMissingFile(t *testing.T) {
	if _, err := LoadRegistry(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("accepted missing registry file")
	}
}

func TestWatchRegistry(t *testing.T) {
	path := writeRegistry(t, "a.example:1\n")
	var mu sync.Mutex
	var views [][]string
	stop := WatchRegistry(path, 5*time.Millisecond, func(servers []string) {
		mu.Lock()
		views = append(views, servers)
		mu.Unlock()
	})
	defer stop()

	waitViews := func(n int) [][]string {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			if len(views) >= n {
				out := append([][]string(nil), views...)
				mu.Unlock()
				return out
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %d registry views", n)
		return nil
	}

	// Initial read fires once.
	v := waitViews(1)
	if !reflect.DeepEqual(v[0], []string{"a.example:1"}) {
		t.Fatalf("initial view %v", v[0])
	}

	// A bad intermediate state (half-written edit) must not fire.
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	n := len(views)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("bad registry content fired onChange (%d views)", n)
	}

	// A valid append fires with the new full list.
	if err := os.WriteFile(path, []byte("a.example:1\nb.example:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	v = waitViews(2)
	if !reflect.DeepEqual(v[len(v)-1], []string{"a.example:1", "b.example:2"}) {
		t.Fatalf("updated view %v", v[len(v)-1])
	}

	// Unchanged content does not re-fire.
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	n = len(views)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("unchanged registry re-fired onChange (%d views)", n)
	}

	// stop is idempotent and returns after the goroutine exits.
	stop()
	stop()
}
