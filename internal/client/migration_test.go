package client_test

import (
	"errors"
	"testing"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
)

// TestPressureMigrationAllPolicies: every policy must evacuate a
// pressured server on Rebalance and keep all pages readable
// afterwards (paper §2.1).
func TestPressureMigrationAllPolicies(t *testing.T) {
	cases := []struct {
		pol      client.Policy
		servers  int
		pressure int // which server to pressure
	}{
		{client.PolicyNone, 3, 0},
		{client.PolicyMirroring, 3, 0},
		{client.PolicyParity, 4, 1},        // a data server
		{client.PolicyParity, 4, 3},        // the parity server
		{client.PolicyParityLogging, 5, 1}, // a data column
		{client.PolicyWriteThrough, 3, 0},
	}
	for _, c := range cases {
		name := c.pol.String()
		if c.pol == client.PolicyParity && c.pressure == 3 {
			name += "/parity-server"
		}
		t.Run(name, func(t *testing.T) {
			cl := newCluster(t, c.servers, 1024)
			p := cl.pager(c.pol)
			const n = 24
			for i := uint64(0); i < n; i++ {
				if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
					t.Fatal(err)
				}
			}
			if cl.servers[c.pressure].Store().Len() == 0 {
				t.Skip("pressured server holds nothing under this layout")
			}
			cl.servers[c.pressure].SetPressure(true)
			if err := p.Rebalance(); err != nil {
				t.Fatalf("rebalance: %v", err)
			}
			if got := cl.servers[c.pressure].Store().Len(); got != 0 {
				t.Fatalf("pressured server still holds %d pages after rebalance", got)
			}
			for i := uint64(0); i < n; i++ {
				got, err := p.PageIn(page.ID(i))
				if err != nil || got.Checksum() != mkPage(i).Checksum() {
					t.Fatalf("pagein %d after migration: %v", i, err)
				}
			}
			// And the system stays writable.
			if err := p.PageOut(page.ID(100), mkPage(100)); err != nil {
				t.Fatalf("pageout after migration: %v", err)
			}
		})
	}
}

// TestParityServerCrashReelects: after the parity server dies, the
// policy must re-elect a parity holder and keep protecting pages
// remotely — not silently degrade to disk.
func TestParityServerCrashReelects(t *testing.T) {
	cl := newCluster(t, 4, 1024) // 3 data + 1 parity
	p := cl.pager(client.PolicyParity)
	const n = 18
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.crash(3) // the parity server
	// The next pageout's forwarding failure must trigger re-election.
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i+1000)); err != nil {
			t.Fatalf("pageout %d after parity crash: %v", i, err)
		}
	}
	if p.Stats().FallbackPageOuts > 0 {
		t.Fatalf("%d pageouts fell back to disk instead of re-electing a parity server",
			p.Stats().FallbackPageOuts)
	}
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i+1000).Checksum() {
			t.Fatalf("pagein %d: %v", i, err)
		}
	}
	// The re-elected parity holder doubled up on one of the data
	// servers (no spare exists); groups with a member elsewhere must
	// still tolerate losing their member. Crash a data server that is
	// NOT the parity host — identifiable as the one holding the most
	// pages (its data plus every parity page).
	parityHost, most := -1, -1
	for i := 0; i < 3; i++ {
		if n := cl.servers[i].Store().Len(); n > most {
			parityHost, most = i, n
		}
	}
	victim := (parityHost + 1) % 3
	cl.crash(victim)
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i+1000).Checksum() {
			t.Fatalf("pagein %d after second crash: %v", i, err)
		}
	}
}

// TestParityDoubleRoleCrashLosesOnlyItsPages: in degraded double-up
// mode, crashing the host that carries both parity and data loses
// exactly the data homed there (reported as ErrPageLost), while pages
// on other servers survive with fresh parity.
func TestParityDoubleRoleCrashLosesOnlyItsPages(t *testing.T) {
	cl := newCluster(t, 4, 1024)
	p := cl.pager(client.PolicyParity)
	const n = 18
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.crash(3) // parity server; re-election doubles up on a data server
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i+1000)); err != nil {
			t.Fatal(err)
		}
	}
	parityHost, most := -1, -1
	for i := 0; i < 3; i++ {
		if n := cl.servers[i].Store().Len(); n > most {
			parityHost, most = i, n
		}
	}
	cl.crash(parityHost)
	lost, survived := 0, 0
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		switch {
		case err == nil:
			if got.Checksum() != mkPage(i+1000).Checksum() {
				t.Fatalf("page %d silently corrupted", i)
			}
			survived++
		case errors.Is(err, client.ErrPageLost):
			lost++
		default:
			t.Fatalf("pagein %d: unexpected error %v", i, err)
		}
	}
	if lost == 0 {
		t.Fatal("double-role crash lost nothing — degraded mode not exercised")
	}
	if survived == 0 {
		t.Fatal("pages on other servers also lost")
	}
	// Still writable afterwards.
	if err := p.PageOut(page.ID(0), mkPage(5000)); err != nil {
		t.Fatalf("pageout after degraded crash: %v", err)
	}
	got, err := p.PageIn(page.ID(0))
	if err != nil || got.Checksum() != mkPage(5000).Checksum() {
		t.Fatalf("re-pageout of a lost page: %v", err)
	}
}

// TestBackgroundRebalanceLoop: with RebalanceEvery set, migration
// happens without explicit Rebalance calls.
func TestBackgroundRebalanceLoop(t *testing.T) {
	cl := newCluster(t, 3, 1024)
	p, err := client.New(client.Config{
		ClientName:     "bg-rebalance",
		Servers:        cl.addrs,
		Policy:         client.PolicyNone,
		RebalanceEvery: 10 * time.Millisecond,
		Dial:           cl.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	for i := uint64(0); i < 12; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := -1
	for i, s := range cl.servers {
		if s.Store().Len() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no server holds pages")
	}
	cl.servers[victim].SetPressure(true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cl.servers[victim].Store().Len() == 0 {
			return // background loop drained it
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background rebalance never migrated the pressured server's pages")
}
