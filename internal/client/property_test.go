package client_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rmp/internal/client"
	"rmp/internal/memnet"
	"rmp/internal/page"
	"rmp/internal/server"
)

// Property-based tests for the redundancy policies: under a random
// write workload followed by the death of one randomly chosen server,
// every page a policy promises to protect must read back
// byte-identical. The generator is seeded, so a failure reproduces by
// rerunning the same seed (logged with the failure).

// propCase is one randomized scenario: a sequence of writes (some
// keys written repeatedly, so reconstruction must return the LAST
// value) and one victim server.
type propCase struct {
	seed    int64
	writes  []propWrite
	victim  int
	servers int
}

type propWrite struct {
	id   page.ID
	fill uint64
}

// genCase derives a scenario deterministically from seed. Keys are
// drawn from a small space on purpose: overwrites are the interesting
// case for parity (the delta path) and the log (slot reclamation).
func genCase(seed int64, servers int) propCase {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + rng.Intn(60)
	keySpace := 1 + rng.Intn(24)
	c := propCase{seed: seed, servers: servers, victim: rng.Intn(servers)}
	for i := 0; i < n; i++ {
		c.writes = append(c.writes, propWrite{
			id:   page.ID(rng.Intn(keySpace)),
			fill: rng.Uint64(),
		})
	}
	return c
}

// want returns the final expected contents: last write wins.
func (c propCase) want() map[page.ID]uint64 {
	m := make(map[page.ID]uint64)
	for _, w := range c.writes {
		m[w.id] = w.fill
	}
	return m
}

func fillPage(fill uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(fill)
	return p
}

// runPropCase drives one scenario against a fresh cluster: replay the
// writes, crash the victim, and verify every surviving key reads back
// byte-identical to its last written value.
func runPropCase(t *testing.T, pol client.Policy, c propCase) {
	t.Helper()
	cl := newCluster(t, c.servers, 4096)
	p := cl.pager(pol)
	for _, w := range c.writes {
		if err := p.PageOut(w.id, fillPage(w.fill)); err != nil {
			t.Fatalf("seed %d: pageout %d: %v", c.seed, w.id, err)
		}
	}
	cl.crash(c.victim)
	for id, fill := range c.want() {
		got, err := p.PageIn(id)
		if err != nil {
			t.Fatalf("seed %d: pagein %d after crash of server %d: %v",
				c.seed, id, c.victim, err)
		}
		want := fillPage(fill)
		if got.Checksum() != want.Checksum() {
			t.Fatalf("seed %d: page %d reconstructed wrong after crash of server %d",
				c.seed, id, c.victim)
		}
	}
	// The pager itself must agree nothing was lost.
	if r := p.Redundancy(); r.Lost != 0 {
		t.Fatalf("seed %d: Redundancy reports %d lost pages", c.seed, r.Lost)
	}
}

// TestPropertySingleCrashReconstruction: for each single-failure
// policy, many seeded random workloads each survive one random server
// death with byte-identical reconstruction.
func TestPropertySingleCrashReconstruction(t *testing.T) {
	cases := []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
	}
	const rounds = 12
	for _, tc := range cases {
		t.Run(tc.pol.String(), func(t *testing.T) {
			for seed := int64(1); seed <= rounds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					runPropCase(t, tc.pol, genCase(seed, tc.servers))
				})
			}
		})
	}
}

// runPropCaseTiered is runPropCase over tiered servers: before the
// victim dies, every survivor's pages are forced down into the
// compressed and disk tiers, so reconstruction reads surviving
// replicas and parity out of the slow tiers — byte-identical all the
// same.
func runPropCaseTiered(t *testing.T, pol client.Policy, c propCase) {
	t.Helper()
	cl := &cluster{t: t, net: memnet.New()}
	for i := 0; i < c.servers; i++ {
		cl.addServer(server.Config{
			Name:          fmt.Sprintf("srv%d", i),
			CapacityPages: 4096,
			OverflowFrac:  0.10,
			Spill:         true,
		})
	}
	p := cl.pager(pol)
	for _, w := range c.writes {
		if err := p.PageOut(w.id, fillPage(w.fill)); err != nil {
			t.Fatalf("seed %d: pageout %d: %v", c.seed, w.id, err)
		}
	}
	// Demote everything everywhere: one page may stay hot, one
	// compressed, the rest spill.
	for _, srv := range cl.servers {
		srv.Store().SetTargets(1, 1)
		srv.Store().Enforce()
	}
	cl.crash(c.victim)
	for id, fill := range c.want() {
		got, err := p.PageIn(id)
		if err != nil {
			t.Fatalf("seed %d: pagein %d after crash of server %d (tiered): %v",
				c.seed, id, c.victim, err)
		}
		want := fillPage(fill)
		if got.Checksum() != want.Checksum() {
			t.Fatalf("seed %d: page %d reconstructed wrong from demoted tiers (victim %d)",
				c.seed, id, c.victim)
		}
	}
	if r := p.Redundancy(); r.Lost != 0 {
		t.Fatalf("seed %d: Redundancy reports %d lost pages", c.seed, r.Lost)
	}
	// The survivors really were serving out of their lower tiers.
	var coldHits, diskHits uint64
	for i, srv := range cl.servers {
		if i == c.victim {
			continue
		}
		st := srv.Store().Stats()
		coldHits += st.ColdHits
		diskHits += st.DiskHits
	}
	if coldHits+diskHits == 0 {
		t.Fatalf("seed %d: no reconstruction reads hit a demoted tier", c.seed)
	}
}

// TestPropertyTieredCrashReconstruction: the single-crash property
// holds when the surviving servers hold their pages in compressed and
// disk tiers rather than hot memory.
func TestPropertyTieredCrashReconstruction(t *testing.T) {
	cases := []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
	}
	const rounds = 8
	for _, tc := range cases {
		t.Run(tc.pol.String(), func(t *testing.T) {
			for seed := int64(1); seed <= rounds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					runPropCaseTiered(t, tc.pol, genCase(seed, tc.servers))
				})
			}
		})
	}
}

// TestPropertyFreeThenCrash: interleaving frees with writes must not
// confuse reconstruction — freed pages stay gone, live pages stay
// intact, under every policy.
func TestPropertyFreeThenCrash(t *testing.T) {
	for _, tc := range []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
	} {
		t.Run(tc.pol.String(), func(t *testing.T) {
			t.Parallel()
			const seed = 42
			rng := rand.New(rand.NewSource(seed))
			cl := newCluster(t, tc.servers, 4096)
			p := cl.pager(tc.pol)

			live := make(map[page.ID]uint64)
			for i := 0; i < 80; i++ {
				id := page.ID(rng.Intn(20))
				if _, ok := live[id]; ok && rng.Intn(3) == 0 {
					if err := p.Free(id); err != nil {
						t.Fatalf("free %d: %v", id, err)
					}
					delete(live, id)
					continue
				}
				fill := rng.Uint64()
				if err := p.PageOut(id, fillPage(fill)); err != nil {
					t.Fatalf("pageout %d: %v", id, err)
				}
				live[id] = fill
			}
			cl.crash(rng.Intn(tc.servers))
			for id, fill := range live {
				got, err := p.PageIn(id)
				if err != nil {
					t.Fatalf("pagein %d after crash: %v", id, err)
				}
				if got.Checksum() != fillPage(fill).Checksum() {
					t.Fatalf("page %d corrupted after crash", id)
				}
			}
		})
	}
}
