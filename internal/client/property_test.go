package client_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rmp/internal/client"
	"rmp/internal/page"
)

// Property-based tests for the redundancy policies: under a random
// write workload followed by the death of one randomly chosen server,
// every page a policy promises to protect must read back
// byte-identical. The generator is seeded, so a failure reproduces by
// rerunning the same seed (logged with the failure).

// propCase is one randomized scenario: a sequence of writes (some
// keys written repeatedly, so reconstruction must return the LAST
// value) and one victim server.
type propCase struct {
	seed    int64
	writes  []propWrite
	victim  int
	servers int
}

type propWrite struct {
	id   page.ID
	fill uint64
}

// genCase derives a scenario deterministically from seed. Keys are
// drawn from a small space on purpose: overwrites are the interesting
// case for parity (the delta path) and the log (slot reclamation).
func genCase(seed int64, servers int) propCase {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + rng.Intn(60)
	keySpace := 1 + rng.Intn(24)
	c := propCase{seed: seed, servers: servers, victim: rng.Intn(servers)}
	for i := 0; i < n; i++ {
		c.writes = append(c.writes, propWrite{
			id:   page.ID(rng.Intn(keySpace)),
			fill: rng.Uint64(),
		})
	}
	return c
}

// want returns the final expected contents: last write wins.
func (c propCase) want() map[page.ID]uint64 {
	m := make(map[page.ID]uint64)
	for _, w := range c.writes {
		m[w.id] = w.fill
	}
	return m
}

func fillPage(fill uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(fill)
	return p
}

// runPropCase drives one scenario against a fresh cluster: replay the
// writes, crash the victim, and verify every surviving key reads back
// byte-identical to its last written value.
func runPropCase(t *testing.T, pol client.Policy, c propCase) {
	t.Helper()
	cl := newCluster(t, c.servers, 4096)
	p := cl.pager(pol)
	for _, w := range c.writes {
		if err := p.PageOut(w.id, fillPage(w.fill)); err != nil {
			t.Fatalf("seed %d: pageout %d: %v", c.seed, w.id, err)
		}
	}
	cl.crash(c.victim)
	for id, fill := range c.want() {
		got, err := p.PageIn(id)
		if err != nil {
			t.Fatalf("seed %d: pagein %d after crash of server %d: %v",
				c.seed, id, c.victim, err)
		}
		want := fillPage(fill)
		if got.Checksum() != want.Checksum() {
			t.Fatalf("seed %d: page %d reconstructed wrong after crash of server %d",
				c.seed, id, c.victim)
		}
	}
	// The pager itself must agree nothing was lost.
	if r := p.Redundancy(); r.Lost != 0 {
		t.Fatalf("seed %d: Redundancy reports %d lost pages", c.seed, r.Lost)
	}
}

// TestPropertySingleCrashReconstruction: for each single-failure
// policy, many seeded random workloads each survive one random server
// death with byte-identical reconstruction.
func TestPropertySingleCrashReconstruction(t *testing.T) {
	cases := []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
	}
	const rounds = 12
	for _, tc := range cases {
		t.Run(tc.pol.String(), func(t *testing.T) {
			for seed := int64(1); seed <= rounds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					runPropCase(t, tc.pol, genCase(seed, tc.servers))
				})
			}
		})
	}
}

// TestPropertyFreeThenCrash: interleaving frees with writes must not
// confuse reconstruction — freed pages stay gone, live pages stay
// intact, under every policy.
func TestPropertyFreeThenCrash(t *testing.T) {
	for _, tc := range []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
	} {
		t.Run(tc.pol.String(), func(t *testing.T) {
			t.Parallel()
			const seed = 42
			rng := rand.New(rand.NewSource(seed))
			cl := newCluster(t, tc.servers, 4096)
			p := cl.pager(tc.pol)

			live := make(map[page.ID]uint64)
			for i := 0; i < 80; i++ {
				id := page.ID(rng.Intn(20))
				if _, ok := live[id]; ok && rng.Intn(3) == 0 {
					if err := p.Free(id); err != nil {
						t.Fatalf("free %d: %v", id, err)
					}
					delete(live, id)
					continue
				}
				fill := rng.Uint64()
				if err := p.PageOut(id, fillPage(fill)); err != nil {
					t.Fatalf("pageout %d: %v", id, err)
				}
				live[id] = fill
			}
			cl.crash(rng.Intn(tc.servers))
			for id, fill := range live {
				got, err := p.PageIn(id)
				if err != nil {
					t.Fatalf("pagein %d after crash: %v", id, err)
				}
				if got.Checksum() != fillPage(fill).Checksum() {
					t.Fatalf("page %d corrupted after crash", id)
				}
			}
		})
	}
}
