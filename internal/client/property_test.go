package client_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rmp/internal/chaos"
	"rmp/internal/client"
	"rmp/internal/memnet"
	"rmp/internal/page"
	"rmp/internal/server"
)

// Property-based tests for the redundancy policies: under a random
// write workload followed by the death of one randomly chosen server,
// every page a policy promises to protect must read back
// byte-identical. The generator is seeded, so a failure reproduces by
// rerunning the same seed (logged with the failure).

// propCase is one randomized scenario: a sequence of writes (some
// keys written repeatedly, so reconstruction must return the LAST
// value) and one victim server.
type propCase struct {
	seed    int64
	writes  []propWrite
	victim  int
	servers int
}

type propWrite struct {
	id   page.ID
	fill uint64
}

// genCase derives a scenario deterministically from seed. Keys are
// drawn from a small space on purpose: overwrites are the interesting
// case for parity (the delta path) and the log (slot reclamation).
func genCase(seed int64, servers int) propCase {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + rng.Intn(60)
	keySpace := 1 + rng.Intn(24)
	c := propCase{seed: seed, servers: servers, victim: rng.Intn(servers)}
	for i := 0; i < n; i++ {
		c.writes = append(c.writes, propWrite{
			id:   page.ID(rng.Intn(keySpace)),
			fill: rng.Uint64(),
		})
	}
	return c
}

// want returns the final expected contents: last write wins.
func (c propCase) want() map[page.ID]uint64 { return lastWrites(c.writes) }

func fillPage(fill uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(fill)
	return p
}

// runPropCase drives one scenario against a fresh cluster: replay the
// writes, crash the victim, and verify every surviving key reads back
// byte-identical to its last written value.
func runPropCase(t *testing.T, pol client.Policy, c propCase) {
	t.Helper()
	cl := newCluster(t, c.servers, 4096)
	p := cl.pager(pol)
	for _, w := range c.writes {
		if err := p.PageOut(w.id, fillPage(w.fill)); err != nil {
			t.Fatalf("seed %d: pageout %d: %v", c.seed, w.id, err)
		}
	}
	cl.crash(c.victim)
	if err := chaos.NoLostPage(c.want(), p.PageIn); err != nil {
		t.Fatalf("seed %d after crash of server %d: %v", c.seed, c.victim, err)
	}
	// The pager itself must agree nothing was lost.
	if r := p.Redundancy(); r.Lost != 0 {
		t.Fatalf("seed %d: Redundancy reports %d lost pages", c.seed, r.Lost)
	}
}

// TestPropertySingleCrashReconstruction: for each single-failure
// policy, many seeded random workloads each survive one random server
// death with byte-identical reconstruction.
func TestPropertySingleCrashReconstruction(t *testing.T) {
	cases := []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
		{client.PolicyRS, 6},
	}
	const rounds = 12
	for _, tc := range cases {
		t.Run(tc.pol.String(), func(t *testing.T) {
			for seed := int64(1); seed <= rounds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					runPropCase(t, tc.pol, genCase(seed, tc.servers))
				})
			}
		})
	}
}

// runPropCaseTiered is runPropCase over tiered servers: before the
// victim dies, every survivor's pages are forced down into the
// compressed and disk tiers, so reconstruction reads surviving
// replicas and parity out of the slow tiers — byte-identical all the
// same.
func runPropCaseTiered(t *testing.T, pol client.Policy, c propCase) {
	t.Helper()
	cl := &cluster{t: t, net: memnet.New()}
	for i := 0; i < c.servers; i++ {
		cl.addServer(server.Config{
			Name:          fmt.Sprintf("srv%d", i),
			CapacityPages: 4096,
			OverflowFrac:  0.10,
			Spill:         true,
		})
	}
	p := cl.pager(pol)
	for _, w := range c.writes {
		if err := p.PageOut(w.id, fillPage(w.fill)); err != nil {
			t.Fatalf("seed %d: pageout %d: %v", c.seed, w.id, err)
		}
	}
	// Demote everything everywhere: one page may stay hot, one
	// compressed, the rest spill.
	for _, srv := range cl.servers {
		srv.Store().SetTargets(1, 1)
		srv.Store().Enforce()
	}
	cl.crash(c.victim)
	if err := chaos.NoLostPage(c.want(), p.PageIn); err != nil {
		t.Fatalf("seed %d after crash of server %d (tiered): %v", c.seed, c.victim, err)
	}
	if r := p.Redundancy(); r.Lost != 0 {
		t.Fatalf("seed %d: Redundancy reports %d lost pages", c.seed, r.Lost)
	}
	// The survivors really were serving out of their lower tiers.
	var coldHits, diskHits uint64
	for i, srv := range cl.servers {
		if i == c.victim {
			continue
		}
		st := srv.Store().Stats()
		coldHits += st.ColdHits
		diskHits += st.DiskHits
	}
	if coldHits+diskHits == 0 {
		t.Fatalf("seed %d: no reconstruction reads hit a demoted tier", c.seed)
	}
}

// TestPropertyTieredCrashReconstruction: the single-crash property
// holds when the surviving servers hold their pages in compressed and
// disk tiers rather than hot memory.
func TestPropertyTieredCrashReconstruction(t *testing.T) {
	cases := []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
		{client.PolicyRS, 6},
	}
	const rounds = 8
	for _, tc := range cases {
		t.Run(tc.pol.String(), func(t *testing.T) {
			for seed := int64(1); seed <= rounds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					runPropCaseTiered(t, tc.pol, genCase(seed, tc.servers))
				})
			}
		})
	}
}

// genWrites is genCase's workload generator alone: a seeded random
// write sequence over a small key space, victims chosen elsewhere
// (the multi-crash tests draw theirs from a chaos.KillSet instead).
func genWrites(rng *rand.Rand) []propWrite {
	n := 10 + rng.Intn(60)
	keySpace := 1 + rng.Intn(24)
	writes := make([]propWrite, 0, n)
	for i := 0; i < n; i++ {
		writes = append(writes, propWrite{
			id:   page.ID(rng.Intn(keySpace)),
			fill: rng.Uint64(),
		})
	}
	return writes
}

func lastWrites(writes []propWrite) map[page.ID]uint64 {
	m := make(map[page.ID]uint64)
	for _, w := range writes {
		m[w.id] = w.fill
	}
	return m
}

// TestPropertyRSMultiCrashReconstruction: RS(4,2) under a seeded
// random workload survives a correlated kill-set tick — a random set
// of j ≤ m = 2 servers crashing in the same instant, connections
// severed mid-stream — with every page reading back byte-identical to
// its last written value, and the cluster still writable afterwards.
func TestPropertyRSMultiCrashReconstruction(t *testing.T) {
	const rounds = 10
	for seed := int64(1); seed <= rounds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			writes := genWrites(rng)
			cl := newCluster(t, 6, 4096)
			p := cl.pagerWith(rsConfig(cl, 4, 2))
			for _, w := range writes {
				if err := p.PageOut(w.id, fillPage(w.fill)); err != nil {
					t.Fatalf("seed %d: pageout %d: %v", seed, w.id, err)
				}
			}

			ks := chaos.NewKillSet(seed, 2, cl.killTargets()...)
			victims := ks.Tick()
			if len(victims) < 1 || len(victims) > 2 {
				t.Fatalf("seed %d: kill-set tick killed %v", seed, victims)
			}

			if err := chaos.NoLostPage(lastWrites(writes), p.PageIn); err != nil {
				t.Fatalf("seed %d after killing %v: %v", seed, victims, err)
			}
			if r := p.Redundancy(); r.Lost != 0 {
				t.Fatalf("seed %d: Redundancy reports %d lost pages", seed, r.Lost)
			}
			// Still writable on the shrunken cluster.
			if err := p.PageOut(page.ID(9000), fillPage(uint64(seed))); err != nil {
				t.Fatalf("seed %d: pageout denied after killing %v: %v",
					seed, victims, err)
			}
			if got, err := p.PageIn(page.ID(9000)); err != nil ||
				got.Checksum() != fillPage(uint64(seed)).Checksum() {
				t.Fatalf("seed %d: post-crash write unreadable: %v", seed, err)
			}
		})
	}
}

// TestPropertyFailClosedBeyondTolerance: the single-failure policies
// pushed past their tolerance — two servers killed in the same
// kill-set tick — must fail closed: every read either returns the
// exact last-written bytes or a clean error. Garbage never reaches
// the application, and the pager itself accounts the loss.
func TestPropertyFailClosedBeyondTolerance(t *testing.T) {
	cases := []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
	}
	const rounds = 6
	for _, tc := range cases {
		t.Run(tc.pol.String(), func(t *testing.T) {
			lostReads := 0
			for seed := int64(1); seed <= rounds; seed++ {
				rng := rand.New(rand.NewSource(seed))
				writes := genWrites(rng)
				cl := newCluster(t, tc.servers, 4096)
				p := cl.pagerWith(cl.config(tc.pol))
				for _, w := range writes {
					if err := p.PageOut(w.id, fillPage(w.fill)); err != nil {
						t.Fatalf("seed %d: pageout %d: %v", seed, w.id, err)
					}
				}

				ks := chaos.NewKillSet(seed, 2, cl.killTargets()...)
				victims := ks.KillExactly(2)
				for id, fill := range lastWrites(writes) {
					got, err := p.PageIn(id)
					if err != nil {
						lostReads++ // clean failure: acceptable past tolerance
						continue
					}
					if got.Checksum() != fillPage(fill).Checksum() {
						t.Fatalf("seed %d: page %d read back garbage after killing %v",
							seed, id, victims)
					}
				}
				// Whatever was unreadable must be accounted as lost, not
				// silently dropped.
				if lost := p.Redundancy().Lost; lostReads > 0 && lost == 0 &&
					p.Stats().LostPages == 0 {
					t.Fatalf("seed %d: reads failed but no loss accounted", seed)
				}
			}
			// Two simultaneous crashes exceed tolerance=1: across the
			// rounds at least one page must actually have been lost, or
			// the property never exercised the fail-closed path.
			if lostReads == 0 {
				t.Fatalf("no page was ever lost across %d double-crash rounds", rounds)
			}
		})
	}
}

// TestPropertyFreeThenCrash: interleaving frees with writes must not
// confuse reconstruction — freed pages stay gone, live pages stay
// intact, under every policy.
func TestPropertyFreeThenCrash(t *testing.T) {
	for _, tc := range []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 4},
		{client.PolicyRS, 6},
	} {
		t.Run(tc.pol.String(), func(t *testing.T) {
			t.Parallel()
			const seed = 42
			rng := rand.New(rand.NewSource(seed))
			cl := newCluster(t, tc.servers, 4096)
			p := cl.pager(tc.pol)

			live := make(map[page.ID]uint64)
			for i := 0; i < 80; i++ {
				id := page.ID(rng.Intn(20))
				if _, ok := live[id]; ok && rng.Intn(3) == 0 {
					if err := p.Free(id); err != nil {
						t.Fatalf("free %d: %v", id, err)
					}
					delete(live, id)
					continue
				}
				fill := rng.Uint64()
				if err := p.PageOut(id, fillPage(fill)); err != nil {
					t.Fatalf("pageout %d: %v", id, err)
				}
				live[id] = fill
			}
			cl.crash(rng.Intn(tc.servers))
			for id, fill := range live {
				got, err := p.PageIn(id)
				if err != nil {
					t.Fatalf("pagein %d after crash: %v", id, err)
				}
				if got.Checksum() != fillPage(fill).Checksum() {
					t.Fatalf("page %d corrupted after crash", id)
				}
			}
		})
	}
}
