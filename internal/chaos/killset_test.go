package chaos

import (
	"reflect"
	"testing"
	"time"

	"rmp/internal/memnet"
)

// fakeTargets returns n named targets whose Kill just records itself,
// plus the shared kill log.
func fakeTargets(n int) ([]Target, *[]string) {
	log := &[]string{}
	ts := make([]Target, n)
	for i := range ts {
		name := string(rune('a' + i))
		ts[i] = Target{Name: name, Kill: func() { *log = append(*log, name) }}
	}
	return ts, log
}

func TestKillSetDeterministicFromSeed(t *testing.T) {
	run := func() []string {
		ts, _ := fakeTargets(8)
		ks := NewKillSet(42, 3, ts...)
		for ks.Alive() > 0 {
			ks.Tick()
		}
		return ks.Killed()
	}
	a := run()
	if got := run(); !reflect.DeepEqual(a, got) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, got)
	}
	if len(a) != 8 {
		t.Fatalf("schedule killed %d of 8 targets", len(a))
	}
}

func TestKillSetTickBoundedByMaxKill(t *testing.T) {
	ts, log := fakeTargets(10)
	ks := NewKillSet(7, 2, ts...)
	for ks.Alive() > 0 {
		before := len(*log)
		victims := ks.Tick()
		if len(victims) < 1 || len(victims) > 2 {
			t.Fatalf("tick killed %d targets, want 1..2", len(victims))
		}
		if len(*log)-before != len(victims) {
			t.Fatalf("tick reported %d victims but invoked %d kills",
				len(victims), len(*log)-before)
		}
	}
	if ks.Tick() != nil {
		t.Fatal("tick on an exhausted set killed something")
	}
	// Every target died exactly once.
	seen := map[string]int{}
	for _, name := range *log {
		seen[name]++
	}
	if len(seen) != 10 {
		t.Fatalf("killed %d distinct targets, want 10", len(seen))
	}
	for name, c := range seen {
		if c != 1 {
			t.Fatalf("target %s killed %d times", name, c)
		}
	}
}

func TestKillSetScheduleScripted(t *testing.T) {
	ts, _ := fakeTargets(6)
	ks := NewKillSet(1, 2, ts...)
	ticks := ks.Schedule(2, 1, 2)
	want := []int{2, 1, 2}
	for i, victims := range ticks {
		if len(victims) != want[i] {
			t.Fatalf("tick %d killed %v, want %d victims", i, victims, want[i])
		}
	}
	if ks.Alive() != 1 {
		t.Fatalf("%d survivors after 2+1+2 of 6, want 1", ks.Alive())
	}
	// Scripted over-tolerance tick clamps to the survivors.
	if got := ks.KillExactly(5); len(got) != 1 {
		t.Fatalf("final over-sized tick killed %v, want the 1 survivor", got)
	}
}

// TestKillSetSeversMemnetServers wires a KillSet to memnet.Kill: one
// tick must make a random pair of servers both refuse new dials and
// sever their established connections, while survivors keep working.
func TestKillSetSeversMemnetServers(t *testing.T) {
	net := memnet.New()
	addrs := []string{"srv0:7077", "srv1:7077", "srv2:7077", "srv3:7077"}
	conns := map[string]chan error{}
	targets := make([]Target, len(addrs))
	for i, a := range addrs {
		a := a
		ln := net.MustListen(a)
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					buf := make([]byte, 1)
					_, err := c.Read(buf) // park until severed or closed
					conns[a] <- err
				}()
			}
		}()
		conns[a] = make(chan error, 4)
		if _, err := net.Dial(a); err != nil {
			t.Fatalf("pre-kill dial %s: %v", a, err)
		}
		targets[i] = Target{Name: a, Kill: func() { net.Kill(a) }}
	}

	ks := NewKillSet(3, 2, targets...)
	victims := ks.KillExactly(2)
	if len(victims) != 2 {
		t.Fatalf("killed %v, want 2 victims", victims)
	}
	dead := map[string]bool{victims[0]: true, victims[1]: true}
	for _, a := range addrs {
		if dead[a] {
			if _, err := net.Dial(a); err == nil {
				t.Errorf("dial to killed %s succeeded", a)
			}
			select {
			case err := <-conns[a]:
				if err == nil {
					t.Errorf("severed conn on %s read without error", a)
				}
			case <-time.After(2 * time.Second):
				t.Errorf("established conn on %s not severed by kill", a)
			}
		} else {
			if _, err := net.Dial(a); err != nil {
				t.Errorf("dial to surviving %s failed: %v", a, err)
			}
		}
	}
}
