// Machine-checked invariants: the pass/fail criteria every chaos
// schedule is judged against. They are ordinary functions returning
// errors (not testing.T helpers) so the same checks run inside `go
// test` property tests and inside the rmpbench scale harness, where a
// violation fails the experiment rather than a test.
package chaos

import (
	"fmt"
	"runtime"
	"time"

	"rmp/internal/page"
)

// NoLostPage is the core durability invariant: every acknowledged
// page — want maps page ID to the fill pattern of its last
// acknowledged write — must read back byte-identical. read is the
// recovery path under test (typically Pager.PageIn). The first
// unreadable or corrupt page is returned as an error; nil means no
// acknowledged page was lost.
func NoLostPage(want map[page.ID]uint64, read func(page.ID) (page.Buf, error)) error {
	for id, fill := range want {
		got, err := read(id)
		if err != nil {
			return fmt.Errorf("invariant NoLostPage: page %d unreadable: %w", id, err)
		}
		w := page.NewBuf()
		w.Fill(fill)
		ok := got.Checksum() == w.Checksum()
		page.Put(got) // read buffers are pooled, caller-owned
		if !ok {
			return fmt.Errorf("invariant NoLostPage: page %d read back wrong bytes (want fill %#x)", id, fill)
		}
	}
	return nil
}

// BoundedExposure checks the graded re-protection exposure windows
// (client Stats.ExposureAtTol): atTol[i] is the total time spent with
// exactly i further crashes survivable, atTol[0] the fully-exposed
// window where one more crash loses pages. limits has the same shape;
// a negative limit leaves that grade unchecked. The invariant holds
// when every checked grade accrued no more than its limit.
func BoundedExposure(atTol, limits [5]time.Duration) error {
	for i := range atTol {
		if limits[i] < 0 {
			continue
		}
		if atTol[i] > limits[i] {
			return fmt.Errorf("invariant BoundedExposure: %v at remaining tolerance %d exceeds limit %v",
				atTol[i], i, limits[i])
		}
	}
	return nil
}

// Baseline is a point-in-time snapshot of process-wide resources,
// taken before a scenario builds its cluster, against which
// CleanShutdown judges teardown. The underlying counters
// (runtime.NumGoroutine, page.Stats) are process-global, so baseline
// deltas are only meaningful for scenarios that run serially — the
// scale harness and end-to-end chaos runs, not parallel subtests.
type Baseline struct {
	Goroutines int
	Page       page.PoolStats
	Frame      page.PoolStats
}

// CaptureBaseline snapshots the current goroutine count and pool
// counters.
func CaptureBaseline() Baseline {
	p, f := page.Stats()
	return Baseline{Goroutines: runtime.NumGoroutine(), Page: p, Frame: f}
}

// CleanShutdown verifies that a torn-down scenario released its
// resources: the goroutine count returns to within 2 of the baseline
// inside grace (polling, since conn teardown is asynchronous), and
// the pooled buffers handed out since the baseline and never returned
// (Gets − Puts − Discards, both classes) number at most
// maxOutstanding. The allowance exists because some buffers leave the
// pool legitimately — pages still resident in a store at teardown are
// garbage-collected with it, and timed-out request payloads are
// deliberately leaked to the GC rather than re-pooled — so the caller
// states how many such buffers its scenario can justify; anything
// beyond that is a leak.
func (b Baseline) CleanShutdown(grace time.Duration, maxOutstanding uint64) error {
	deadline := time.Now().Add(grace)
	goroutines := runtime.NumGoroutine()
	for goroutines > b.Goroutines+2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("invariant CleanShutdown: %d goroutines still running %v after teardown (baseline %d)",
				goroutines, grace, b.Goroutines)
		}
		time.Sleep(10 * time.Millisecond)
		goroutines = runtime.NumGoroutine()
	}
	p, f := page.Stats()
	outstanding := poolDelta(b.Page, p) + poolDelta(b.Frame, f)
	if outstanding > maxOutstanding {
		return fmt.Errorf("invariant CleanShutdown: %d pooled buffers unaccounted for after teardown (allowance %d)",
			outstanding, maxOutstanding)
	}
	return nil
}

// poolDelta is the number of buffers handed out since the baseline
// that were neither returned nor discarded — buffers some owner still
// holds (or leaked).
func poolDelta(base, now page.PoolStats) uint64 {
	gets := now.Gets - base.Gets
	returned := (now.Puts - base.Puts) + (now.Discards - base.Discards)
	if returned >= gets {
		return 0
	}
	return gets - returned
}
