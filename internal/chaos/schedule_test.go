package chaos

import (
	"strings"
	"testing"
)

var testServers = []string{"s0", "s1", "s2", "s3"}
var testRacks = map[string][]string{
	"r0": {"s0", "s1"},
	"r1": {"s2", "s3"},
}

// recorder is an Env that appends op strings, for asserting what a
// timeline actually executes.
type recorder struct{ ops []string }

func (r *recorder) env() Env {
	return Env{
		Kill:      func(s string) { r.ops = append(r.ops, "kill "+s) },
		Restart:   func(s string) { r.ops = append(r.ops, "restart "+s) },
		Partition: func(a, b string) { r.ops = append(r.ops, "partition "+a+"->"+b) },
		Heal:      func(a, b string) { r.ops = append(r.ops, "heal "+a+"->"+b) },
		Settle:    func() { r.ops = append(r.ops, "settle") },
	}
}

func drive(tl *Timeline, env Env) {
	for _, tick := range tl.Ticks() {
		tl.Fire(tick, env)
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	src := `
# a comment
@0 kill s1
@2 restart s1     # trailing comment
@3 partition s0 -> s2 for 4
@9 heal cli -> s3
@10 rackfail r0 for 5
@20 rackheal r1
@21 flap s2 period 4 count 2
@40 rolling every 6 down 2
@99 settle
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	canon := s.String()
	s2, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
	}
	if got := s2.String(); got != canon {
		t.Fatalf("String is not a fixed point:\n%q\n%q", canon, got)
	}
	if len(s.Events) != 9 {
		t.Fatalf("parsed %d events, want 9", len(s.Events))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                  // empty schedule
		"kill s0",                           // missing @tick
		"@x kill s0",                        // bad tick
		"@-1 kill s0",                       // negative tick
		"@5 kill",                           // missing target
		"@5 explode s0",                     // unknown op
		"@5 partition s0 s1",                // missing arrow
		"@5 partition s0 -> s1 for 0",       // zero-duration phase
		"@5 rackfail r0 for 0",              // zero-duration phase
		"@5 flap s0 period 1 count 2",       // period too small
		"@5 flap s0 period 4 count 0",       // zero count
		"@5 rolling every 0 down 1",         // zero spacing
		"@5 rolling every 4 down 0",         // zero down
		"@5 settle now",                     // trailing operand
		"@5 restart ?",                      // random restart is meaningless
		"@5 kill s0 extra",                  // trailing operand
		"@2000000 kill s0",                  // beyond MaxTick bound
		"@5 heal a -> b for 3",              // heal takes no duration
		"@5 flap s0 period 9999999 count 2", // beyond bound
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCompileRejectsOverlap(t *testing.T) {
	bad := []string{
		"@0 kill s0\n@1 kill s0",                              // kill while down
		"@0 restart s0",                                       // restart of a live server
		"@0 kill s0\n@1 restart s0\n@2 restart s0",            // double restart
		"@0 partition a -> s1\n@1 partition a -> s1",          // duplicate partition
		"@0 heal a -> s1",                                     // heal with no partition
		"@0 partition a -> s1 for 2\n@1 partition a -> s1",    // overlap with auto-heal
		"@0 rackfail r0 for 5\n@2 rackfail r0 for 5",          // rack isolation overlap
		"@0 kill nosuch",                                      // unknown server
		"@0 rackfail nosuch",                                  // unknown rack
		"@0 partition a -> nosuch",                            // unknown destination
		"@0 flap s0 period 4 count 2\n@1 kill s0",             // flap overlaps kill
		"@0 rolling every 2 down 1\n@1 kill s1",               // rolling overlaps kill
	}
	for _, src := range bad {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := s.Compile(1, testServers, testRacks); err == nil {
			t.Errorf("Compile(%q) succeeded, want overlap/consistency error", src)
		}
	}
}

func TestCompileRollingExpansion(t *testing.T) {
	s := MustParse("@10 rolling every 6 down 2")
	tl, err := s.Compile(1, testServers, testRacks)
	if err != nil {
		t.Fatal(err)
	}
	// Per server: settle, kill, restart.
	if tl.Steps() != 3*len(testServers) {
		t.Fatalf("rolling expanded to %d steps, want %d", tl.Steps(), 3*len(testServers))
	}
	rec := &recorder{}
	drive(tl, rec.env())
	want := []string{
		"settle", "kill s0", "restart s0",
		"settle", "kill s1", "restart s1",
		"settle", "kill s2", "restart s2",
		"settle", "kill s3", "restart s3",
	}
	if strings.Join(rec.ops, ",") != strings.Join(want, ",") {
		t.Fatalf("rolling executed %v, want %v", rec.ops, want)
	}
	if tl.MaxTick() != 10+3*6+2 {
		t.Fatalf("MaxTick = %d", tl.MaxTick())
	}
}

func TestCompileRackFailIsolates(t *testing.T) {
	s := MustParse("@5 rackfail r0 for 3")
	tl, err := s.Compile(1, testServers, testRacks)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	drive(tl, rec.env())
	want := []string{
		"partition *->s0", "partition *->s1",
		"heal *->s0", "heal *->s1",
	}
	if strings.Join(rec.ops, ",") != strings.Join(want, ",") {
		t.Fatalf("rackfail executed %v, want %v", rec.ops, want)
	}
}

func TestCompileSeededTargetsDeterministic(t *testing.T) {
	s := MustParse("@0 kill ?\n@5 restart s0\n@10 flap ? period 4 count 1")
	// The '?' picks must replay identically for one seed...
	tl1, err := s.Compile(7, testServers, testRacks)
	if err == nil {
		rec1, rec2 := &recorder{}, &recorder{}
		drive(tl1, rec1.env())
		tl2, err2 := s.Compile(7, testServers, testRacks)
		if err2 != nil {
			t.Fatal(err2)
		}
		drive(tl2, rec2.env())
		if strings.Join(rec1.ops, ",") != strings.Join(rec2.ops, ",") {
			t.Fatalf("same seed produced different timelines:\n%v\n%v", rec1.ops, rec2.ops)
		}
		if strings.Join(tl1.Log(), "\n") != strings.Join(tl2.Log(), "\n") {
			t.Fatalf("same seed produced different logs")
		}
	}
	// ...and some seed must produce a different victim than seed 7
	// (otherwise '?' is not actually random over the universe). With
	// the restart pinned to s0, a '?' kill of any other server makes
	// the compile fail — both outcomes are acceptable per seed, but
	// across many seeds both must occur.
	sawOK, sawErr := false, false
	for seed := int64(0); seed < 64; seed++ {
		if _, err := s.Compile(seed, testServers, testRacks); err == nil {
			sawOK = true
		} else {
			sawErr = true
		}
	}
	if !sawOK || !sawErr {
		t.Fatalf("'?' target not exercising the server universe (ok=%v err=%v)", sawOK, sawErr)
	}
}

// TestFireSkippedTicksCatchUp: a driver that visits only Ticks()
// still fires everything, in order.
func TestFireSkippedTicksCatchUp(t *testing.T) {
	s := MustParse("@0 kill s0\n@7 restart s0\n@9 kill s1")
	tl, err := s.Compile(1, testServers, testRacks)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	tl.Fire(100, rec.env()) // one late catch-up call
	want := "kill s0,restart s0,kill s1"
	if strings.Join(rec.ops, ",") != want {
		t.Fatalf("catch-up fired %v", rec.ops)
	}
	if len(tl.Log()) != 3 {
		t.Fatalf("log has %d lines, want 3", len(tl.Log()))
	}
}

// FuzzSchedule: the parser and compiler must never panic, the
// canonical form must round-trip as a fixed point, and compilation
// plus execution must be deterministic — malformed timelines,
// overlapping events, and zero-duration phases all rejected with
// errors, never crashes.
func FuzzSchedule(f *testing.F) {
	f.Add("@0 kill s0\n@2 restart s0")
	f.Add("@0 kill ?\n@9 settle")
	f.Add("@3 partition s0 -> s2 for 4\n@9 heal cli -> s3")
	f.Add("@3 partition * -> s2 for 4")
	f.Add("@10 rackfail r0 for 5\n@20 rackheal r1\n@15 rackfail r1 for 2")
	f.Add("@21 flap s2 period 4 count 2")
	f.Add("@40 rolling every 6 down 2")
	f.Add("@0 kill s0\n@1 kill s0")             // overlapping
	f.Add("@5 partition s0 -> s1 for 0")        // zero-duration
	f.Add("@5 flap s0 period 0 count 0")        // degenerate
	f.Add("# only a comment")                   // empty
	f.Add("@999999999999 kill s0")              // overflow-ish tick
	f.Add("@0 kill s0 @2 restart s0")           // events jammed on one line
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return // malformed input rejected cleanly
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%q", err, canon)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("String not a fixed point:\n%q\n%q", canon, got)
		}
		tl1, err1 := s.Compile(7, testServers, testRacks)
		tl2, err2 := s2.Compile(7, testServers, testRacks)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compile verdict differs between identical schedules: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return // inconsistent timeline rejected cleanly
		}
		drive(tl1, Env{
			Kill:      func(string) {},
			Restart:   func(string) {},
			Partition: func(string, string) {},
			Heal:      func(string, string) {},
		})
		drive(tl2, Env{
			Kill:      func(string) {},
			Restart:   func(string) {},
			Partition: func(string, string) {},
			Heal:      func(string, string) {},
		})
		l1, l2 := tl1.Log(), tl2.Log()
		if strings.Join(l1, "\n") != strings.Join(l2, "\n") {
			t.Fatalf("replay diverged:\n%v\n%v", l1, l2)
		}
		if tl1.Steps() != len(l1) {
			t.Fatalf("fired %d of %d steps", len(l1), tl1.Steps())
		}
	})
}
