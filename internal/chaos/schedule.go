package chaos

// This file is the scripted-schedule engine: a seeded, deterministic
// timeline of composable fault events that replaces one-shot KillSet
// ticks with whole adversarial scenarios — rolling restarts,
// asymmetric partitions, flapping servers, correlated rack failures.
//
// A schedule is written in a small line grammar (one event per line,
// '#' comments):
//
//	@<tick> kill <server>                  # power-cord crash (memory lost)
//	@<tick> restart <server>               # revive on the same address, empty
//	@<tick> partition <from> -> <to> [for <n>]   # directional block, auto-heal after n
//	@<tick> heal <from> -> <to>
//	@<tick> rackfail <rack> [for <n>]      # isolate a whole failure domain
//	@<tick> rackheal <rack>
//	@<tick> flap <server> period <p> count <c>   # kill/revive cycles
//	@<tick> rolling every <e> down <d>     # rolling restart over all servers
//	@<tick> settle                         # barrier: wait for re-protection
//
// kill/flap accept the target '?': a server drawn from the compile
// seed, so a fuzzer-shaped scenario replays exactly from its logged
// seed. rackfail isolates (partitions "*" -> member) rather than
// killing: it models a rack switch outage — members keep their memory
// and rejoin on heal — which is the correlated failure a redundancy
// policy can and must survive without loss. Rack power loss beyond
// the policy's tolerance is expressible with explicit kills.
//
// Parse builds a Schedule; Compile(seed, servers, racks) expands the
// directives (flap, rolling, rackfail) into a primitive Timeline and
// state-checks it (no kill of a down server, no restart of a live
// one, no overlapping partition, durations > 0). Fire(tick, env)
// executes due primitives against an Env and appends to a
// deterministic event log — the byte-identical replay artifact the
// determinism tests compare.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Op is a schedule event kind. The first block are primitives (they
// survive compilation); the rest are directives expanded by Compile.
type Op int

const (
	OpKill Op = iota
	OpRestart
	OpPartition
	OpHeal
	OpSettle
	OpRackFail
	OpRackHeal
	OpFlap
	OpRolling
)

func (o Op) String() string {
	switch o {
	case OpKill:
		return "kill"
	case OpRestart:
		return "restart"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpSettle:
		return "settle"
	case OpRackFail:
		return "rackfail"
	case OpRackHeal:
		return "rackheal"
	case OpFlap:
		return "flap"
	case OpRolling:
		return "rolling"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// MaxTick bounds every tick and count in a schedule, so a malformed
// or fuzzed input cannot demand a near-infinite expansion or run.
const MaxTick = 1_000_000

// Event is one parsed schedule line.
type Event struct {
	Tick int
	Op   Op
	// Target is the server (kill/restart/flap), rack (rackfail/
	// rackheal), or source endpoint (partition/heal). Empty for
	// settle and rolling.
	Target string
	// To is the destination endpoint of partition/heal.
	To string
	// For is the auto-heal duration of partition/rackfail (0 = none).
	For int
	// Period and Count parametrize flap.
	Period, Count int
	// Every and Down parametrize rolling.
	Every, Down int
}

// String renders the event in canonical grammar form, one line, no
// terminator.
func (e Event) String() string {
	switch e.Op {
	case OpKill, OpRestart:
		return fmt.Sprintf("@%d %s %s", e.Tick, e.Op, e.Target)
	case OpPartition:
		if e.For > 0 {
			return fmt.Sprintf("@%d partition %s -> %s for %d", e.Tick, e.Target, e.To, e.For)
		}
		return fmt.Sprintf("@%d partition %s -> %s", e.Tick, e.Target, e.To)
	case OpHeal:
		return fmt.Sprintf("@%d heal %s -> %s", e.Tick, e.Target, e.To)
	case OpSettle:
		return fmt.Sprintf("@%d settle", e.Tick)
	case OpRackFail:
		if e.For > 0 {
			return fmt.Sprintf("@%d rackfail %s for %d", e.Tick, e.Target, e.For)
		}
		return fmt.Sprintf("@%d rackfail %s", e.Tick, e.Target)
	case OpRackHeal:
		return fmt.Sprintf("@%d rackheal %s", e.Tick, e.Target)
	case OpFlap:
		return fmt.Sprintf("@%d flap %s period %d count %d", e.Tick, e.Target, e.Period, e.Count)
	case OpRolling:
		return fmt.Sprintf("@%d rolling every %d down %d", e.Tick, e.Every, e.Down)
	}
	return fmt.Sprintf("@%d %s", e.Tick, e.Op)
}

// Schedule is a parsed fault timeline, events in source order.
type Schedule struct {
	Events []Event
}

// String renders the schedule in canonical form: Parse(s.String()) is
// the identity, which the fuzz target holds as an invariant.
func (s *Schedule) String() string {
	var b strings.Builder
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads the schedule grammar. Field errors (bad numbers,
// missing operands, out-of-range ticks, zero durations) are caught
// here; cross-event consistency (overlaps, restart-before-kill) is
// checked by Compile, which sees the expanded timeline.
func Parse(src string) (*Schedule, error) {
	s := &Schedule{}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		e, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("chaos: schedule line %d: %w", ln+1, err)
		}
		s.Events = append(s.Events, e)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("chaos: empty schedule")
	}
	return s, nil
}

// MustParse is Parse for static schedule literals: it panics on error.
func MustParse(src string) *Schedule {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func parseEvent(fields []string) (Event, error) {
	var e Event
	if !strings.HasPrefix(fields[0], "@") {
		return e, fmt.Errorf("event must start with @tick, got %q", fields[0])
	}
	tick, err := parseNum(strings.TrimPrefix(fields[0], "@"))
	if err != nil {
		return e, fmt.Errorf("tick: %w", err)
	}
	e.Tick = tick
	if len(fields) < 2 {
		return e, fmt.Errorf("missing op after @%d", tick)
	}
	op, rest := fields[1], fields[2:]
	switch op {
	case "kill", "restart":
		if e.Op = OpKill; op == "restart" {
			e.Op = OpRestart
		}
		if len(rest) != 1 {
			return e, fmt.Errorf("%s wants exactly one server", op)
		}
		e.Target = rest[0]
		if op == "restart" && e.Target == "?" {
			return e, fmt.Errorf("restart target cannot be '?'")
		}
	case "partition", "heal":
		if e.Op = OpPartition; op == "heal" {
			e.Op = OpHeal
		}
		if len(rest) < 3 || rest[1] != "->" {
			return e, fmt.Errorf("%s wants '<from> -> <to>'", op)
		}
		e.Target, e.To = rest[0], rest[2]
		rest = rest[3:]
		if op == "heal" {
			if len(rest) != 0 {
				return e, fmt.Errorf("heal takes no trailing operands")
			}
			break
		}
		if len(rest) == 2 && rest[0] == "for" {
			if e.For, err = parseNum(rest[1]); err != nil {
				return e, fmt.Errorf("partition for: %w", err)
			}
			if e.For == 0 {
				return e, fmt.Errorf("partition duration must be > 0 (zero-duration phase)")
			}
		} else if len(rest) != 0 {
			return e, fmt.Errorf("partition trailing operands %v", rest)
		}
	case "rackfail", "rackheal":
		if e.Op = OpRackFail; op == "rackheal" {
			e.Op = OpRackHeal
		}
		if len(rest) < 1 {
			return e, fmt.Errorf("%s wants a rack name", op)
		}
		e.Target = rest[0]
		rest = rest[1:]
		if op == "rackheal" {
			if len(rest) != 0 {
				return e, fmt.Errorf("rackheal takes no trailing operands")
			}
			break
		}
		if len(rest) == 2 && rest[0] == "for" {
			if e.For, err = parseNum(rest[1]); err != nil {
				return e, fmt.Errorf("rackfail for: %w", err)
			}
			if e.For == 0 {
				return e, fmt.Errorf("rackfail duration must be > 0 (zero-duration phase)")
			}
		} else if len(rest) != 0 {
			return e, fmt.Errorf("rackfail trailing operands %v", rest)
		}
	case "flap":
		e.Op = OpFlap
		if len(rest) != 5 || rest[1] != "period" || rest[3] != "count" {
			return e, fmt.Errorf("flap wants '<server> period <p> count <c>'")
		}
		e.Target = rest[0]
		if e.Period, err = parseNum(rest[2]); err != nil {
			return e, fmt.Errorf("flap period: %w", err)
		}
		if e.Count, err = parseNum(rest[4]); err != nil {
			return e, fmt.Errorf("flap count: %w", err)
		}
		if e.Period < 2 {
			return e, fmt.Errorf("flap period must be >= 2 (a cycle needs down and up ticks)")
		}
		if e.Count < 1 {
			return e, fmt.Errorf("flap count must be >= 1")
		}
	case "rolling":
		e.Op = OpRolling
		if len(rest) != 4 || rest[0] != "every" || rest[2] != "down" {
			return e, fmt.Errorf("rolling wants 'every <e> down <d>'")
		}
		if e.Every, err = parseNum(rest[1]); err != nil {
			return e, fmt.Errorf("rolling every: %w", err)
		}
		if e.Down, err = parseNum(rest[3]); err != nil {
			return e, fmt.Errorf("rolling down: %w", err)
		}
		if e.Every < 1 || e.Down < 1 {
			return e, fmt.Errorf("rolling every and down must be >= 1 (zero-duration phase)")
		}
	case "settle":
		e.Op = OpSettle
		if len(rest) != 0 {
			return e, fmt.Errorf("settle takes no operands")
		}
	default:
		return e, fmt.Errorf("unknown op %q", op)
	}
	return e, nil
}

// parseNum parses a non-negative bounded integer; the bound keeps a
// fuzzed schedule from demanding a million-tick run.
func parseNum(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative value %d", n)
	}
	if n > MaxTick {
		return 0, fmt.Errorf("value %d exceeds schedule bound %d", n, MaxTick)
	}
	return n, nil
}

// prim is one compiled primitive step of a Timeline.
type prim struct {
	tick int
	op   Op // OpKill, OpRestart, OpPartition, OpHeal, or OpSettle
	a, b string
}

func (p prim) String() string {
	switch p.op {
	case OpPartition, OpHeal:
		return fmt.Sprintf("t=%d %s %s->%s", p.tick, p.op, p.a, p.b)
	case OpSettle:
		return fmt.Sprintf("t=%d settle", p.tick)
	}
	return fmt.Sprintf("t=%d %s %s", p.tick, p.op, p.a)
}

// Timeline is a compiled schedule: primitives sorted by tick (stable
// within a tick, in expansion order), ready to Fire against an Env.
type Timeline struct {
	prims []prim
	// next is the cursor of the first unfired primitive; Fire demands
	// non-decreasing ticks. log collects every fired step. Both are
	// owned by the single goroutine driving Fire.
	next int
	log  []string
}

// Env is the set of cluster operations a Timeline fires. Kill,
// Restart, Partition, and Heal are required; Settle may be nil (the
// barrier becomes a no-op).
type Env struct {
	Kill      func(server string)
	Restart   func(server string)
	Partition func(from, to string)
	Heal      func(from, to string)
	// Settle blocks until the cluster has re-protected everything it
	// can — the deterministic barrier that keeps a rolling restart
	// from outrunning re-protection on a slow (-race) machine.
	Settle func()
}

// Compile expands the schedule's directives over a concrete cluster —
// servers (sorted order = rolling order), racks (failure domains for
// rackfail), and a seed resolving every '?' target — and state-checks
// the expanded timeline: kills of dead servers, restarts of live
// ones, overlapping partitions, and unknown names are errors. The
// result is a pure function of (schedule, seed, servers, racks).
func (s *Schedule) Compile(seed int64, servers []string, racks map[string][]string) (*Timeline, error) {
	known := make(map[string]bool, len(servers))
	for _, sv := range servers {
		known[sv] = true
	}
	rng := rand.New(rand.NewSource(seed))
	pick := func() string { return servers[rng.Intn(len(servers))] }

	var prims []prim
	for _, e := range s.Events {
		switch e.Op {
		case OpKill, OpRestart:
			target := e.Target
			if target == "?" {
				if len(servers) == 0 {
					return nil, fmt.Errorf("chaos: compile: '?' target with no servers")
				}
				target = pick()
			}
			if !known[target] {
				return nil, fmt.Errorf("chaos: compile: unknown server %q", target)
			}
			prims = append(prims, prim{tick: e.Tick, op: e.Op, a: target})
		case OpPartition:
			if !known[e.To] {
				return nil, fmt.Errorf("chaos: compile: partition into unknown server %q", e.To)
			}
			prims = append(prims, prim{tick: e.Tick, op: OpPartition, a: e.Target, b: e.To})
			if e.For > 0 {
				prims = append(prims, prim{tick: e.Tick + e.For, op: OpHeal, a: e.Target, b: e.To})
			}
		case OpHeal:
			if !known[e.To] {
				return nil, fmt.Errorf("chaos: compile: heal into unknown server %q", e.To)
			}
			prims = append(prims, prim{tick: e.Tick, op: OpHeal, a: e.Target, b: e.To})
		case OpRackFail, OpRackHeal:
			members := racks[e.Target]
			if len(members) == 0 {
				return nil, fmt.Errorf("chaos: compile: unknown or empty rack %q", e.Target)
			}
			for _, m := range members {
				if !known[m] {
					return nil, fmt.Errorf("chaos: compile: rack %q member %q is not a server", e.Target, m)
				}
				if e.Op == OpRackFail {
					prims = append(prims, prim{tick: e.Tick, op: OpPartition, a: "*", b: m})
					if e.For > 0 {
						prims = append(prims, prim{tick: e.Tick + e.For, op: OpHeal, a: "*", b: m})
					}
				} else {
					prims = append(prims, prim{tick: e.Tick, op: OpHeal, a: "*", b: m})
				}
			}
		case OpFlap:
			target := e.Target
			if target == "?" {
				if len(servers) == 0 {
					return nil, fmt.Errorf("chaos: compile: '?' target with no servers")
				}
				target = pick()
			}
			if !known[target] {
				return nil, fmt.Errorf("chaos: compile: unknown server %q", target)
			}
			down := e.Period / 2
			if down < 1 {
				down = 1
			}
			for c := 0; c < e.Count; c++ {
				t := e.Tick + c*e.Period
				prims = append(prims,
					prim{tick: t, op: OpSettle},
					prim{tick: t, op: OpKill, a: target},
					prim{tick: t + down, op: OpRestart, a: target})
			}
		case OpRolling:
			for i, sv := range servers {
				t := e.Tick + i*e.Every
				prims = append(prims,
					prim{tick: t, op: OpSettle},
					prim{tick: t, op: OpKill, a: sv},
					prim{tick: t + e.Down, op: OpRestart, a: sv})
			}
		case OpSettle:
			prims = append(prims, prim{tick: e.Tick, op: OpSettle})
		default:
			return nil, fmt.Errorf("chaos: compile: unexpected op %v", e.Op)
		}
	}

	sort.SliceStable(prims, func(i, j int) bool { return prims[i].tick < prims[j].tick })
	if err := checkTimeline(prims); err != nil {
		return nil, err
	}
	return &Timeline{prims: prims}, nil
}

// checkTimeline walks the sorted primitives simulating cluster state:
// a second kill of a down server, a restart of a live one, or an
// overlapping partition means the schedule's phases overlap — the
// author's intent is ambiguous, so it is rejected rather than
// silently reordered.
func checkTimeline(prims []prim) error {
	down := make(map[string]bool)
	parts := make(map[[2]string]bool)
	for _, p := range prims {
		switch p.op {
		case OpKill:
			if down[p.a] {
				return fmt.Errorf("chaos: compile: %s: server already down (overlapping events)", p)
			}
			down[p.a] = true
		case OpRestart:
			if !down[p.a] {
				return fmt.Errorf("chaos: compile: %s: server is not down (overlapping events)", p)
			}
			delete(down, p.a)
		case OpPartition:
			key := [2]string{p.a, p.b}
			if parts[key] {
				return fmt.Errorf("chaos: compile: %s: partition already installed (overlapping events)", p)
			}
			parts[key] = true
		case OpHeal:
			key := [2]string{p.a, p.b}
			if !parts[key] {
				return fmt.Errorf("chaos: compile: %s: no such partition to heal", p)
			}
			delete(parts, key)
		}
	}
	return nil
}

// MaxTick is the last tick carrying an event (0 for an empty
// timeline). The driver runs at least this many ticks.
func (tl *Timeline) MaxTick() int {
	if len(tl.prims) == 0 {
		return 0
	}
	return tl.prims[len(tl.prims)-1].tick
}

// Steps is the number of compiled primitive steps.
func (tl *Timeline) Steps() int { return len(tl.prims) }

// Ticks returns the distinct ticks carrying events, ascending — a
// driver that does no between-tick work can visit only these.
func (tl *Timeline) Ticks() []int {
	var out []int
	for _, p := range tl.prims {
		if len(out) == 0 || out[len(out)-1] != p.tick {
			out = append(out, p.tick)
		}
	}
	return out
}

// Fire executes every primitive due at tick, in compiled order,
// appending each to the deterministic log. Ticks must be fired in
// non-decreasing order by a single goroutine; skipped ticks fire
// nothing (their events, if any, fire at the next call — the driver
// is expected to visit every tick or use Ticks).
func (tl *Timeline) Fire(tick int, env Env) []string {
	var fired []string
	for tl.next < len(tl.prims) && tl.prims[tl.next].tick <= tick {
		p := tl.prims[tl.next]
		tl.next++
		switch p.op {
		case OpKill:
			env.Kill(p.a)
		case OpRestart:
			env.Restart(p.a)
		case OpPartition:
			env.Partition(p.a, p.b)
		case OpHeal:
			env.Heal(p.a, p.b)
		case OpSettle:
			if env.Settle != nil {
				env.Settle()
			}
		}
		line := p.String()
		tl.log = append(tl.log, line)
		fired = append(fired, line)
	}
	return fired
}

// Log returns the full fired-event timeline so far — the
// byte-identical artifact the determinism tests compare across
// replays of the same seed.
func (tl *Timeline) Log() []string {
	return append([]string(nil), tl.log...)
}
