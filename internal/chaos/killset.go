package chaos

import "math/rand"

// Target is one killable server: a name plus the hook that makes it
// unreachable — close a real process, sever a Proxy, or
// memnet.Network.Kill for in-memory clusters. Kill must be safe to
// call exactly once; the KillSet never invokes it twice.
type Target struct {
	Name string
	Kill func()
}

// KillSet schedules correlated multi-server crashes over a fixed
// target set: each tick kills a whole subset of survivors in one
// instant, which is the failure mode an RS(k,m) pager must absorb and
// single-proxy fault injection cannot produce. The victim sequence is
// a pure function of the seed, so a failing schedule replays exactly
// from the logged seed.
type KillSet struct {
	rng     *rand.Rand
	maxKill int
	alive   []Target
	killed  []string
}

// NewKillSet builds a scheduler over targets that kills at most
// maxKill of them per tick (maxKill is typically the m the redundancy
// policy claims to tolerate; values below 1 are treated as 1).
func NewKillSet(seed int64, maxKill int, targets ...Target) *KillSet {
	if maxKill < 1 {
		maxKill = 1
	}
	return &KillSet{
		rng:     rand.New(rand.NewSource(seed)),
		maxKill: maxKill,
		alive:   append([]Target(nil), targets...),
	}
}

// Alive reports how many targets have not yet been killed.
func (ks *KillSet) Alive() int { return len(ks.alive) }

// Killed returns the names of every target killed so far, in kill
// order (victims within one tick are ordered as drawn).
func (ks *KillSet) Killed() []string {
	return append([]string(nil), ks.killed...)
}

// Tick kills a uniformly random non-empty subset of at most maxKill
// surviving targets in one instant and returns their names. With no
// survivors left it returns nil.
func (ks *KillSet) Tick() []string {
	bound := ks.maxKill
	if len(ks.alive) < bound {
		bound = len(ks.alive)
	}
	if bound < 1 {
		return nil
	}
	return ks.KillExactly(1 + ks.rng.Intn(bound))
}

// KillExactly kills exactly j random survivors at once — the scripted
// form of Tick for schedules like "2, then 1, then 2". It is not
// bounded by maxKill (a script may deliberately exceed the claimed
// tolerance to probe fail-closed behavior) but is clamped to the
// number of survivors. Returns the victims' names.
func (ks *KillSet) KillExactly(j int) []string {
	if j > len(ks.alive) {
		j = len(ks.alive)
	}
	if j < 1 {
		return nil
	}
	victims := ks.rng.Perm(len(ks.alive))[:j]
	names := make([]string, 0, j)
	dead := make(map[int]bool, j)
	for _, i := range victims {
		ks.alive[i].Kill()
		names = append(names, ks.alive[i].Name)
		dead[i] = true
	}
	survivors := ks.alive[:0]
	for i, t := range ks.alive {
		if !dead[i] {
			survivors = append(survivors, t)
		}
	}
	ks.alive = survivors
	ks.killed = append(ks.killed, names...)
	return names
}

// Schedule runs one KillExactly per entry — Schedule(2, 1, 2) is
// three correlated crash ticks — and returns the victims per tick.
func (ks *KillSet) Schedule(js ...int) [][]string {
	out := make([][]string, 0, len(js))
	for _, j := range js {
		out = append(out, ks.KillExactly(j))
	}
	return out
}
