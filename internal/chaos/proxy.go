// Package chaos is a fault-injecting proxy for reliability testing:
// it relays byte streams between RMP clients and servers while
// letting tests cut connections mid-frame, inject latency, or
// throttle — the failure modes a real workstation cluster produces
// and unit tests otherwise cannot reach deterministically. It fronts
// TCP backends by default (New) and any injectable transport — e.g.
// the deterministic in-memory network in internal/memnet — via NewOn.
package chaos

import (
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy relays connections to a backend with injectable faults.
type Proxy struct {
	dial func() (net.Conn, error)
	ln   net.Listener

	mu sync.Mutex
	// conns tracks both sides of every live relay so CutAll can sever
	// them. Guarded by mu.
	conns map[net.Conn]struct{}
	// closed latches Close. Guarded by mu.
	closed bool

	// delayNanos is added before relaying each chunk (per direction).
	delayNanos atomic.Int64
	// cutAfter, when positive, cuts each NEW connection after that
	// many client->server bytes — typically mid-frame.
	cutAfter atomic.Int64
	// dropAll makes new connections fail immediately (backend
	// unreachable) without stopping existing ones.
	dropAll atomic.Bool
	// stallOn/stallRemaining implement Stall: once enabled, at most
	// stallRemaining further bytes are forwarded (all connections and
	// both directions combined); everything after is read and
	// discarded while the TCP connections stay open.
	stallOn        atomic.Bool
	stallRemaining atomic.Int64
	// corruptBits is the float64 probability (math.Float64bits) of
	// flipping one payload byte in each server->client chunk.
	corruptBits atomic.Uint64

	wg sync.WaitGroup
}

// New starts a proxy in front of a TCP backend on an ephemeral
// loopback port.
func New(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return NewOn(ln, func() (net.Conn, error) {
		return net.DialTimeout("tcp", backend, 5*time.Second)
	}), nil
}

// NewOn starts a proxy accepting on ln and reaching its backend via
// dial — the transport-agnostic form, used with in-memory networks.
func NewOn(ln net.Listener, dial func() (net.Conn, error)) *Proxy {
	p := &Proxy{dial: dial, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

// Addr is the address clients should dial instead of the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetDelay adds d of latency to every relayed chunk in each direction
// (so one request/response round trip pays roughly 2d).
func (p *Proxy) SetDelay(d time.Duration) { p.delayNanos.Store(int64(d)) }

// CutAfterBytes arranges for each subsequently accepted connection to
// be severed after n client-to-server bytes. 0 disables.
func (p *Proxy) CutAfterBytes(n int64) { p.cutAfter.Store(n) }

// RefuseNew makes the proxy refuse new connections (accept + close),
// emulating a crashed daemon whose host still answers TCP.
func (p *Proxy) RefuseNew(on bool) { p.dropAll.Store(on) }

// Stall forwards at most n more bytes (all connections and both
// directions combined) and then black-holes the proxy: data keeps
// being read from both sides and silently discarded, nothing is
// forwarded, and every TCP connection — existing and newly accepted —
// stays open. This is the wedged-process failure mode: the host still
// ACKs at the TCP level but the daemon never answers, so only a
// request deadline can unblock the client. n = 0 stalls immediately;
// use Unstall to recover.
func (p *Proxy) Stall(n int64) {
	p.stallRemaining.Store(n)
	p.stallOn.Store(true)
}

// Unstall lifts a Stall for subsequent traffic. Frames truncated
// mid-stall have already desynchronized their connections; clients
// are expected to reconnect.
func (p *Proxy) Unstall() { p.stallOn.Store(false) }

// CorruptResponses flips one payload byte per server->client chunk
// with the given probability (0 disables, 1 corrupts every chunk).
// The flip lands past the 12-byte frame header, so a data-bearing
// response survives framing but fails checksum verification at the
// client; chunks too short to carry payload (bare acks) pass through
// untouched — smashing the fixed header models a torn connection,
// which is CutAfterBytes' job, not silent corruption.
func (p *Proxy) CorruptResponses(rate float64) {
	p.corruptBits.Store(math.Float64bits(rate))
}

// CutAll severs every active connection immediately (network
// partition / machine crash).
func (p *Proxy) CutAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
}

// Close shuts the proxy down.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.CutAll()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.dropAll.Load() {
			conn.Close()
			continue
		}
		back, err := p.dial()
		if err != nil {
			conn.Close()
			continue
		}
		p.track(conn)
		p.track(back)
		budget := p.cutAfter.Load()
		p.wg.Add(2)
		go p.relay(conn, back, budget, false) // client -> server, budgeted
		go p.relay(back, conn, 0, true)       // server -> client
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay copies src -> dst in chunks, applying the configured delay,
// corruption (server->client only), stalling, and severing both sides
// after budget bytes (0 = unlimited).
func (p *Proxy) relay(src, dst net.Conn, budget int64, fromServer bool) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.untrack(src)
		p.untrack(dst)
	}()
	buf := make([]byte, 4096)
	var relayed int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := time.Duration(p.delayNanos.Load()); d > 0 {
				time.Sleep(d)
			}
			chunk := buf[:n]
			if budget > 0 && relayed+int64(n) > budget {
				chunk = buf[:budget-relayed] // partial frame, then cut
			}
			if p.stallOn.Load() {
				// Claim this chunk's bytes against the shared stall
				// allowance; whatever does not fit is black-holed.
				after := p.stallRemaining.Add(-int64(len(chunk)))
				if after < 0 {
					allowed := after + int64(len(chunk))
					if allowed < 0 {
						allowed = 0
					}
					chunk = chunk[:allowed]
				}
				if len(chunk) == 0 {
					continue // discard; keep reading, keep TCP open
				}
			}
			if fromServer && len(chunk) > 16 {
				if rate := math.Float64frombits(p.corruptBits.Load()); rate > 0 && rand.Float64() < rate {
					chunk[12+(len(chunk)-12)/2] ^= 0xFF
				}
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			relayed += int64(len(chunk))
			if budget > 0 && relayed >= budget {
				return // the cut
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			return
		}
	}
}
