package chaos_test

import (
	"errors"
	"testing"
	"time"

	"rmp/internal/chaos"
	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/wire"
)

func backend(t *testing.T) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{CapacityPages: 1024})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, s.Addr().String()
}

func proxied(t *testing.T) (*server.Server, *chaos.Proxy) {
	t.Helper()
	srv, addr := backend(t)
	p, err := chaos.New(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return srv, p
}

func mkPage(seed uint64) page.Buf {
	b := page.NewBuf()
	b.Fill(seed)
	return b
}

func TestProxyRelaysTransparently(t *testing.T) {
	_, px := proxied(t)
	c, err := client.Dial(px.Addr(), "chaos-client", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := mkPage(7)
	if err := c.PageOut(1, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.PageIn(1)
	if err != nil || got.Checksum() != want.Checksum() {
		t.Fatalf("relay mangled traffic: %v", err)
	}
}

func TestProxyDelay(t *testing.T) {
	_, px := proxied(t)
	px.SetDelay(10 * time.Millisecond)
	c, err := client.Dial(px.Addr(), "chaos-client", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("round trip %v despite 2x10ms injected latency", d)
	}
}

func TestProxyCutAll(t *testing.T) {
	_, px := proxied(t)
	c, err := client.Dial(px.Addr(), "chaos-client", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}
	px.CutAll()
	if _, err := c.PageIn(1); err == nil {
		t.Fatal("request succeeded across a severed connection")
	}
}

// TestCutMidFrame severs the client->server stream in the middle of a
// PAGEOUT frame. The server must discard the partial frame (not store
// garbage) and the client must see a transport error.
func TestCutMidFrame(t *testing.T) {
	srv, px := proxied(t)
	// HELLO is ~30 bytes; a PAGEOUT frame is ~8.25 KB. Cutting at 2 KB
	// lands mid-page-data.
	px.CutAfterBytes(2048)
	c, err := client.Dial(px.Addr(), "chaos-client", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.PageOut(1, mkPage(1))
	if err == nil {
		t.Fatal("pageout succeeded across a mid-frame cut")
	}
	// Give the server a beat to process the broken stream.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && srv.Store().Len() != 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if n := srv.Store().Len(); n != 0 {
		t.Fatalf("server stored %d pages from a truncated frame", n)
	}
}

// TestMirroringSurvivesMidTransferCut: the reliability story end to
// end — one replica's connection dies mid-frame, and the pager keeps
// every page intact via the other replica, re-mirroring onto the
// healthy path.
func TestMirroringSurvivesMidTransferCut(t *testing.T) {
	// Server A sits behind the chaos proxy; server B is direct.
	_, px := proxied(t)
	_, addrB := backend(t)

	p, err := client.New(client.Config{
		ClientName: "chaos-mirror",
		Servers:    []string{px.Addr(), addrB},
		Policy:     client.PolicyMirroring,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 12
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	// All future bytes through the proxy are throttled to die mid-frame.
	px.CutAfterBytes(1)
	px.CutAll()

	// Everything must still read correctly (replica B + re-mirror).
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil {
			t.Fatalf("pagein %d after mid-transfer cut: %v", i, err)
		}
		if got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("page %d corrupted by mid-transfer cut", i)
		}
	}
	// And new pageouts keep working with zero losses.
	for i := uint64(100); i < 100+n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatalf("pageout after cut: %v", err)
		}
	}
	if lost := p.Stats().LostPages; lost != 0 {
		t.Fatalf("%d pages lost despite mirroring", lost)
	}
}

// TestParityLoggingSurvivesMidTransferCut: a data column's link dies
// mid-frame under parity logging; XOR reconstruction plus the rebuild
// must keep every page intact and correct.
func TestParityLoggingSurvivesMidTransferCut(t *testing.T) {
	// Column 0 is proxied; three more data columns and the parity
	// server are direct.
	_, px := proxied(t)
	addrs := []string{px.Addr()}
	for i := 0; i < 4; i++ {
		_, a := backend(t)
		addrs = append(addrs, a)
	}
	p, err := client.New(client.Config{
		ClientName: "chaos-plog",
		Servers:    addrs,
		Policy:     client.PolicyParityLogging,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	px.CutAfterBytes(1) // future connections die instantly
	px.CutAll()         // and current ones now

	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil {
			t.Fatalf("pagein %d after column cut: %v", i, err)
		}
		if got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("page %d corrupted after XOR reconstruction", i)
		}
	}
	if lost := p.Stats().LostPages; lost != 0 {
		t.Fatalf("%d pages lost despite parity logging", lost)
	}
	// Continue paging on the surviving columns.
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i+500)); err != nil {
			t.Fatalf("pageout after rebuild: %v", err)
		}
	}
}

// TestBasicParityFlakyLink: the basic parity policy's home server
// link flaps with injected latency and then dies mid-frame; the
// write-hole repair path must leave groups consistent.
func TestBasicParityFlakyLink(t *testing.T) {
	_, px := proxied(t)
	addrs := []string{px.Addr()}
	for i := 0; i < 3; i++ {
		_, a := backend(t)
		addrs = append(addrs, a)
	}
	p, err := client.New(client.Config{
		ClientName: "chaos-parity",
		Servers:    addrs,
		Policy:     client.PolicyParity,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 15
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	px.SetDelay(2 * time.Millisecond) // the link degrades...
	for i := uint64(0); i < n; i += 2 {
		if err := p.PageOut(page.ID(i), mkPage(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	px.CutAfterBytes(1) // ...then dies mid-frame
	px.CutAll()

	for i := uint64(0); i < n; i++ {
		want := mkPage(i)
		if i%2 == 0 {
			want = mkPage(i + 100)
		}
		got, err := p.PageIn(page.ID(i))
		if err != nil {
			t.Fatalf("pagein %d: %v", i, err)
		}
		if got.Checksum() != want.Checksum() {
			t.Fatalf("page %d corrupted across flaky-link crash", i)
		}
	}
}

// TestProxyStall: a stalled proxy keeps TCP open but forwards nothing
// — the black-holed-daemon failure mode. The request must end in a
// bounded timeout (not hang), and lifting the stall must let a fresh
// connection work again.
func TestProxyStall(t *testing.T) {
	_, px := proxied(t)
	dl := client.Deadlines{Floor: 30 * time.Millisecond, Ceil: 150 * time.Millisecond}
	c, err := client.DialWithDeadlines(px.Addr(), "chaos-client", "", time.Second, dl)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}

	px.Stall(0) // black-hole everything from here on
	start := time.Now()
	_, err = c.PageIn(1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("pagein succeeded through a black-holed proxy")
	}
	if !errors.Is(err, client.ErrReqTimeout) {
		t.Fatalf("expected ErrReqTimeout through a stall, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("timeout took %v; deadline ceiling is 150ms", elapsed)
	}

	px.Unstall()
	c2, err := client.DialWithDeadlines(px.Addr(), "chaos-client", "", time.Second, dl)
	if err != nil {
		t.Fatalf("reconnect after Unstall: %v", err)
	}
	defer c2.Close()
	got, err := c2.PageIn(1)
	if err != nil || got.Checksum() != mkPage(1).Checksum() {
		t.Fatalf("pagein after Unstall: %v", err)
	}
}

// TestProxyStallPartial: the stall allowance forwards a prefix — the
// tiny PAGEIN request and the first half of the 8.3 KB response — and
// black-holes the rest: a stall mid-frame rather than a clean cut.
func TestProxyStallPartial(t *testing.T) {
	_, px := proxied(t)
	dl := client.Deadlines{Floor: 30 * time.Millisecond, Ceil: 150 * time.Millisecond}
	c, err := client.DialWithDeadlines(px.Addr(), "chaos-client", "", time.Second, dl)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}

	px.Stall(4096) // request passes; the response truncates mid-frame
	start := time.Now()
	_, err = c.PageIn(1)
	if !errors.Is(err, client.ErrReqTimeout) {
		t.Fatalf("expected ErrReqTimeout with the response black-holed, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v; deadline ceiling is 150ms", elapsed)
	}
}

// TestProxyCorruptResponses: corrupted server->client payloads must
// surface as BAD_CHECKSUM verdicts (framing intact), not as garbage
// data silently handed to the application.
func TestProxyCorruptResponses(t *testing.T) {
	_, px := proxied(t)
	c, err := client.Dial(px.Addr(), "chaos-client", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}

	px.CorruptResponses(1)
	_, err = c.PageIn(1)
	var se *wire.StatusError
	if !errors.As(err, &se) || se.Status != wire.StatusBadChecksum {
		t.Fatalf("expected BAD_CHECKSUM from corrupted response, got %v", err)
	}

	// The connection survived the corrupt frame: lifting the fault,
	// the very same conn serves the page intact.
	px.CorruptResponses(0)
	got, err := c.PageIn(1)
	if err != nil || got.Checksum() != mkPage(1).Checksum() {
		t.Fatalf("pagein after lifting corruption: %v", err)
	}
}

// TestRefuseNew: a backend that accepts TCP but refuses the protocol
// must not wedge the pager at construction.
func TestRefuseNew(t *testing.T) {
	_, px := proxied(t)
	px.RefuseNew(true)
	_, addrB := backend(t)
	p, err := client.New(client.Config{
		ClientName: "chaos-refuse",
		Servers:    []string{px.Addr(), addrB},
		Policy:     client.PolicyNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.PageOut(1, mkPage(1)); err != nil {
		t.Fatalf("pageout with one refusing server: %v", err)
	}
	if _, err := p.PageIn(1); err != nil {
		t.Fatal(err)
	}
}
