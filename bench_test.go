// Package rmp's top-level benchmarks regenerate every table and
// figure of the paper's evaluation under `go test -bench`, one
// benchmark per artifact, plus live end-to-end benchmarks of the real
// TCP system. `cmd/rmpbench` prints the same tables for human eyes.
package rmp

import (
	"fmt"
	"testing"

	"rmp/internal/apps"
	"rmp/internal/blockdev"
	"rmp/internal/client"
	"rmp/internal/experiments"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/sim"
	"rmp/internal/vm"
)

// --- one benchmark per figure -------------------------------------------

func BenchmarkFig1IdleMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig1(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig2(); len(tab.Rows) != 6 {
			b.Fatal("fig2 incomplete")
		}
	}
}

func BenchmarkFig3InputScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig3(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig4Extrapolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig4(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5WriteThrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig5(); len(tab.Rows) != 4 {
			b.Fatal("fig5 incomplete")
		}
	}
}

func BenchmarkDecompWorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Decomp(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkLoadedEthernet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.LoadedNet(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkWTAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.WTAblation(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkGroupWidthAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.GroupWidthAblation()
		if err != nil || len(tab.Rows) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverflowAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.OverflowAblation()
		if err != nil || len(tab.Rows) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Availability(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkMultiClientEthernet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.MultiClient(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkLiveBatchPageOut measures the pipelined batch path against
// BenchmarkLiveRoundTrip*'s one-at-a-time pageouts.
func BenchmarkLiveBatchPageOut(b *testing.B) {
	s := server.New(server.Config{CapacityPages: 1 << 16})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(s.Addr().String(), "bench-batch", "")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const batch = 32
	keys := make([]uint64, batch)
	pages := make([]page.Buf, batch)
	data := page.NewBuf()
	data.Fill(1)
	for i := range keys {
		keys[i] = uint64(i)
		pages[i] = data
	}
	b.SetBytes(batch * page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.PageOutBatch(keys, pages); err != nil {
			b.Fatal(err)
		}
	}
}

// --- per-application model runs (Figure 2's inner loop) ------------------

func BenchmarkSimulateApp(b *testing.B) {
	for _, w := range apps.All(1.0) {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			stream := sim.FaultStream(w, experiments.ResidentBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{
					Policy:        sim.ParityLogging,
					Servers:       4,
					Net:           sim.Ethernet,
					Disk:          sim.RZ55,
					ResidentBytes: experiments.ResidentBytes,
				}
				r := sim.ChargeFaults(w.Name(), stream, cfg)
				if r.Transfers == 0 {
					b.Fatal("no transfers")
				}
			}
		})
	}
}

// --- live end-to-end benchmarks of the real TCP system -------------------

// liveBench builds a live cluster + pager for benchmarking.
func liveBench(b *testing.B, n int, pol client.Policy) *client.Pager {
	b.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		s := server.New(server.Config{CapacityPages: 1 << 17, OverflowFrac: 0.10})
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		addrs = append(addrs, s.Addr().String())
	}
	p, err := client.New(client.Config{ClientName: "bench", Servers: addrs, Policy: pol})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	return p
}

func benchLiveRoundTrip(b *testing.B, servers int, pol client.Policy) {
	p := liveBench(b, servers, pol)
	data := page.NewBuf()
	data.Fill(1)
	b.SetBytes(2 * page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := page.ID(i % 1024)
		if err := p.PageOut(id, data); err != nil {
			b.Fatal(err)
		}
		if _, err := p.PageIn(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveRoundTripNone(b *testing.B) {
	benchLiveRoundTrip(b, 2, client.PolicyNone)
}

func BenchmarkLiveRoundTripMirroring(b *testing.B) {
	benchLiveRoundTrip(b, 2, client.PolicyMirroring)
}

func BenchmarkLiveRoundTripParity(b *testing.B) {
	benchLiveRoundTrip(b, 3, client.PolicyParity)
}

func BenchmarkLiveRoundTripParityLogging(b *testing.B) {
	benchLiveRoundTrip(b, 5, client.PolicyParityLogging)
}

func BenchmarkLiveRoundTripWriteThrough(b *testing.B) {
	benchLiveRoundTrip(b, 2, client.PolicyWriteThrough)
}

// BenchmarkLiveAppOverPager runs a small real FFT over the live stack
// (vm -> blockdev -> pager -> TCP -> servers) per iteration.
func BenchmarkLiveAppOverPager(b *testing.B) {
	p := liveBench(b, 5, client.PolicyParityLogging)
	dev := blockdev.NewPagerDevice(p)
	w := apps.NewFFT(1 << 13)
	b.SetBytes(w.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := vm.New(w.Bytes(), w.Bytes()/4, dev)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Run(space); err != nil {
			b.Fatal(err)
		}
		if err := space.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryParityLogging measures live crash recovery: each
// iteration builds a cluster, pages out, kills a server, and touches
// a page to trigger reconstruction of the whole layout.
func BenchmarkRecoveryParityLogging(b *testing.B) {
	benchRecovery(b, client.PolicyParityLogging, 5)
}

func BenchmarkRecoveryMirroring(b *testing.B) {
	benchRecovery(b, client.PolicyMirroring, 3)
}

func benchRecovery(b *testing.B, pol client.Policy, n int) {
	data := page.NewBuf()
	data.Fill(7)
	const pages = 128
	b.SetBytes(pages * page.Size)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var addrs []string
		var servers []*server.Server
		for j := 0; j < n; j++ {
			s := server.New(server.Config{CapacityPages: 1 << 16, OverflowFrac: 0.10})
			if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			servers = append(servers, s)
			addrs = append(addrs, s.Addr().String())
		}
		p, err := client.New(client.Config{ClientName: fmt.Sprintf("bench-%d", i), Servers: addrs, Policy: pol})
		if err != nil {
			b.Fatal(err)
		}
		for k := uint64(0); k < pages; k++ {
			if err := p.PageOut(page.ID(k), data); err != nil {
				b.Fatal(err)
			}
		}
		servers[0].Close()
		b.StartTimer()
		// One pagein on the dead server's share triggers full recovery.
		for k := uint64(0); k < pages; k++ {
			if _, err := p.PageIn(page.ID(k)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		p.Close()
		for _, s := range servers[1:] {
			s.Close()
		}
		b.StartTimer()
	}
}
