GO ?= go

.PHONY: all build test race vet vet-json lint escapes bench fuzz-smoke clean

all: build vet lint escapes test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# vet: the stock toolchain vet pass. Kept separate from lint so CI can
# report them as distinct gates.
vet:
	$(GO) vet ./...

# lint: the project-specific rmpvet multichecker, plus staticcheck when
# it is on PATH. staticcheck is optional tooling — we never install it
# here, we only use it if the environment already provides it — but
# rmpvet is a hard gate and runs everywhere the go toolchain runs.
lint:
	$(GO) run ./cmd/rmpvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (rmpvet still enforced)"; \
	fi

# vet-json: the same rmpvet pass with machine-readable output — one
# JSON object per line ({"file","line","col","analyzer","message"}).
# CI pipes this through jq to emit GitHub error annotations on the
# offending lines; editors and other tooling can consume it directly.
vet-json:
	$(GO) run ./cmd/rmpvet -json ./...

# escapes: the compiler-backed allocation gate. Compiles the tree with
# -gcflags='-m -m' and fails if any //rmpvet:hotpath function
# heap-allocates beyond the reviewed baseline in .rmpvet-escapes.
escapes:
	$(GO) run ./cmd/rmpvet -escapes ./...

# bench: regenerate the committed benchmark artifacts at the repo
# root. Each experiment writes its BENCH_*.json next to the table it
# prints; run from the repo root so the artifacts land where CI and
# reviewers expect them.
bench:
	$(GO) run ./cmd/rmpbench -exp pipeline
	$(GO) run ./cmd/rmpbench -exp tier
	$(GO) run ./cmd/rmpbench -exp rs
	$(GO) run ./cmd/rmpbench -exp hotpath
	$(GO) run ./cmd/rmpbench -exp scale

# fuzz-smoke: a short deterministic pass over every fuzz target's seed
# corpus plus a brief mutation run, mirroring the CI fuzz step.
fuzz-smoke:
	$(GO) test ./internal/wire/ -run 'Fuzz' -fuzz FuzzDecode -fuzztime 20s
	$(GO) test ./internal/wire/ -run 'Fuzz' -fuzz FuzzRoundTrip -fuzztime 20s
	$(GO) test ./internal/wire/ -run 'Fuzz' -fuzz FuzzStreamDemux -fuzztime 20s
	$(GO) test ./internal/chaos/ -run 'Fuzz' -fuzz FuzzSchedule -fuzztime 20s

clean:
	$(GO) clean ./...
