// Package rmp is a complete Go implementation of the system described
// in Markatos & Dramitinos, "Implementation of a Reliable Remote
// Memory Pager" (USENIX Technical Conference, 1996): paging to the
// idle main memory of remote workstations, made reliable against
// single-machine crashes by mirroring, basic parity, the paper's
// novel parity-logging scheme, and a write-through baseline.
//
// The module root holds the evaluation harness (bench_test.go and
// integration_test.go); the system lives in the internal packages:
//
//   - internal/wire, internal/server, internal/client: the live TCP
//     system — protocol, memory-donor daemon, and the pager with all
//     five reliability policies, crash recovery and migration;
//   - internal/parity: the parity-logging bookkeeping;
//   - internal/vm, internal/blockdev, internal/disk: the demand-paged
//     address space, the block-device boundary, and the local swap;
//   - internal/apps: the paper's six benchmark applications;
//   - internal/sim, internal/simnet, internal/cluster, internal/model:
//     the calibrated 1996-testbed models behind the figures;
//   - internal/experiments: one harness per published table/figure;
//   - internal/trace: trace recording and replay.
//
// Commands: cmd/rmemd (server daemon), cmd/rmpctl (operator tool),
// cmd/rmpapp (run a workload over a live cluster), cmd/rmptrace
// (offline trace pipeline), cmd/rmpbench (regenerate the paper's
// evaluation). See README.md, DESIGN.md, EXPERIMENTS.md, PROTOCOL.md.
package rmp
